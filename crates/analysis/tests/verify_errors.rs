//! VerifyError catalogue regression tests.
//!
//! Two guarantees for downstream tooling (CI log scrapers, the
//! counterexample-trace artifact, the mutation suite's assertions):
//!
//! 1. **Exhaustiveness** — every variant is constructed here and matched
//!    *without a wildcard arm*, so adding a variant without extending
//!    this test is a compile error, and removing one breaks the build
//!    rather than silently shrinking the catalogue.
//! 2. **Stable Display** — each variant's rendering is pinned byte for
//!    byte. Error text is part of the tool-facing contract; changing it
//!    must be a deliberate, reviewed act.

use holmes_analysis::VerifyError;
use holmes_topology::Rank;

/// One instance of every variant, paired with its pinned rendering.
fn catalogue() -> Vec<(VerifyError, &'static str)> {
    vec![
        (
            VerifyError::EmptyRound { round: 3 },
            "round 3 has no transfers",
        ),
        (
            VerifyError::SelfTransfer {
                round: 1,
                rank: Rank(2),
            },
            "round 1: r2 transfers to itself",
        ),
        (
            VerifyError::UnknownRank {
                round: 0,
                rank: Rank(9),
            },
            "round 0: r9 is not in the topology",
        ),
        (
            VerifyError::MissingLink {
                round: 2,
                from: Rank(0),
                to: Rank(5),
            },
            "round 2: no topology link r0 -> r5",
        ),
        (
            VerifyError::ForeignRank {
                round: 4,
                rank: Rank(7),
            },
            "round 4: r7 is not a group member",
        ),
        (
            VerifyError::DuplicateMember { rank: Rank(3) },
            "r3 appears twice in the member set",
        ),
        (
            VerifyError::MemberNeverSends { rank: Rank(6) },
            "member r6 never sends — its shard cannot circulate",
        ),
        (
            VerifyError::MemberNeverReceives { rank: Rank(1) },
            "member r1 never receives — it cannot obtain the result",
        ),
        (
            VerifyError::ByteCountMismatch {
                expected: 4096,
                actual: 2048,
            },
            "schedule moves 2048 bytes, closed form says 4096",
        ),
        (
            VerifyError::RoundCountMismatch {
                expected: 6,
                actual: 5,
            },
            "schedule has 5 rounds, closed form says 6",
        ),
        (
            VerifyError::CyclicDependency,
            "transfer dependency order is not a DAG",
        ),
        (
            VerifyError::ShapeMismatch { round: 2 },
            "round 2 diverges from the canonical IR constructor",
        ),
        (
            VerifyError::DuplicateDevice { device: Rank(4) },
            "device r4 assigned to more than one logical rank",
        ),
        (
            VerifyError::DeviceOutOfRange { device: Rank(16) },
            "device r16 is outside the topology",
        ),
        (
            VerifyError::AssignmentSizeMismatch {
                expected: 8,
                actual: 6,
            },
            "assignment covers 6 devices, degrees demand 8",
        ),
        (
            VerifyError::StageCountMismatch {
                expected: 4,
                actual: 3,
            },
            "partition has 3 stages, pipeline degree is 4",
        ),
        (
            VerifyError::LayerSumMismatch {
                expected: 32,
                actual: 30,
            },
            "stage layers sum to 30, model has 32",
        ),
        (
            VerifyError::EmptyStage { stage: 2 },
            "stage 2 received zero layers",
        ),
        (
            VerifyError::NonMonotoneStages { fast: 0, slow: 1 },
            "stage 0 is faster than stage 1 but got fewer layers (Eq. 2)",
        ),
        (
            VerifyError::DpGroupNotHomogeneous { group: 1 },
            "DP group 1 claims RDMA but is not NIC-homogeneous (§3.2)",
        ),
        (
            VerifyError::DpGroupSpansClustersUnflagged { group: 0 },
            "DP group 0 spans clusters without hierarchical/TCP flagging (§3.2)",
        ),
        (
            VerifyError::MigrationRankUnknown {
                index: 2,
                rank: Rank(11),
            },
            "migration move 2: r11 is not in the post-churn topology",
        ),
        (
            VerifyError::MigrationSelfMove {
                index: 0,
                rank: Rank(5),
            },
            "migration move 0: r5 copies state to itself",
        ),
        (
            VerifyError::MigrationDuplicateDestination { rank: Rank(7) },
            "migration writes two shards onto destination r7",
        ),
        (
            VerifyError::MigrationUnpriced { moves: 3 },
            "3 migration moves with no positive fabric-priced transfer time",
        ),
        (
            VerifyError::MigrationRestoreMismatch {
                restored: 2,
                seconds: 0.0,
            },
            "2 groups flagged for checkpoint restore but 0 s billed",
        ),
        (
            VerifyError::ProgressWaitCycle {
                collective: 0,
                round: 1,
            },
            "collective 0: wait-for cycle through round 1",
        ),
        (
            VerifyError::ProgressUnboundedRetry {
                collective: 1,
                round: 2,
                from: Rank(0),
                to: Rank(3),
            },
            "collective 1 round 2: r0 -> r3 retries with no fuel bound",
        ),
        (
            VerifyError::MemberLossClaimMismatch {
                collective: 0,
                claimed: true,
                derived: false,
            },
            "collective 0: claims survives_member_loss=true but symbolic run derives false",
        ),
        (
            VerifyError::StateMoveUnroutable {
                index: 1,
                from: Rank(2),
                to: Rank(6),
            },
            "state move 1: no usable route r2 -> r6 on the post-churn fabric",
        ),
        (
            VerifyError::ProgressStall {
                collective: 0,
                round: 3,
                parked: 2,
            },
            "collective 0 round 3: 2 transfers parked with no retry policy",
        ),
        (
            VerifyError::HeteroPartitionSumMismatch {
                expected: 36,
                actual: 35,
            },
            "hetero partition sums to 35 layers, model has 36",
        ),
        (
            VerifyError::StageOverMemberCapacity {
                stage: 1,
                needed_bytes: 40_000_000_000,
                capacity_bytes: 34_359_738_368,
            },
            "stage 1 needs 40000000000 bytes but its smallest member holds 34359738368",
        ),
        (
            VerifyError::BottleneckReducible {
                stage: 2,
                better: 0,
            },
            "bottleneck stage 2 could shed a layer to stage 0 and still finish sooner",
        ),
    ]
}

/// Stable name per variant — matched WITHOUT a wildcard arm, so the
/// compiler forces this test to grow with the enum.
fn variant_name(e: &VerifyError) -> &'static str {
    match e {
        VerifyError::EmptyRound { .. } => "EmptyRound",
        VerifyError::SelfTransfer { .. } => "SelfTransfer",
        VerifyError::UnknownRank { .. } => "UnknownRank",
        VerifyError::MissingLink { .. } => "MissingLink",
        VerifyError::ForeignRank { .. } => "ForeignRank",
        VerifyError::DuplicateMember { .. } => "DuplicateMember",
        VerifyError::MemberNeverSends { .. } => "MemberNeverSends",
        VerifyError::MemberNeverReceives { .. } => "MemberNeverReceives",
        VerifyError::ByteCountMismatch { .. } => "ByteCountMismatch",
        VerifyError::RoundCountMismatch { .. } => "RoundCountMismatch",
        VerifyError::CyclicDependency => "CyclicDependency",
        VerifyError::ShapeMismatch { .. } => "ShapeMismatch",
        VerifyError::DuplicateDevice { .. } => "DuplicateDevice",
        VerifyError::DeviceOutOfRange { .. } => "DeviceOutOfRange",
        VerifyError::AssignmentSizeMismatch { .. } => "AssignmentSizeMismatch",
        VerifyError::StageCountMismatch { .. } => "StageCountMismatch",
        VerifyError::LayerSumMismatch { .. } => "LayerSumMismatch",
        VerifyError::EmptyStage { .. } => "EmptyStage",
        VerifyError::NonMonotoneStages { .. } => "NonMonotoneStages",
        VerifyError::DpGroupNotHomogeneous { .. } => "DpGroupNotHomogeneous",
        VerifyError::DpGroupSpansClustersUnflagged { .. } => "DpGroupSpansClustersUnflagged",
        VerifyError::MigrationRankUnknown { .. } => "MigrationRankUnknown",
        VerifyError::MigrationSelfMove { .. } => "MigrationSelfMove",
        VerifyError::MigrationDuplicateDestination { .. } => "MigrationDuplicateDestination",
        VerifyError::MigrationUnpriced { .. } => "MigrationUnpriced",
        VerifyError::MigrationRestoreMismatch { .. } => "MigrationRestoreMismatch",
        VerifyError::ProgressWaitCycle { .. } => "ProgressWaitCycle",
        VerifyError::ProgressUnboundedRetry { .. } => "ProgressUnboundedRetry",
        VerifyError::MemberLossClaimMismatch { .. } => "MemberLossClaimMismatch",
        VerifyError::StateMoveUnroutable { .. } => "StateMoveUnroutable",
        VerifyError::ProgressStall { .. } => "ProgressStall",
        VerifyError::HeteroPartitionSumMismatch { .. } => "HeteroPartitionSumMismatch",
        VerifyError::StageOverMemberCapacity { .. } => "StageOverMemberCapacity",
        VerifyError::BottleneckReducible { .. } => "BottleneckReducible",
    }
}

#[test]
fn catalogue_covers_every_variant_exactly_once() {
    let entries = catalogue();
    assert_eq!(entries.len(), 34, "catalogue entry count");
    let mut names: Vec<&str> = entries.iter().map(|(e, _)| variant_name(e)).collect();
    let total = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(
        names.len(),
        total,
        "a variant appears twice in the catalogue"
    );
}

#[test]
fn display_is_pinned_byte_for_byte() {
    for (error, expected) in catalogue() {
        assert_eq!(
            error.to_string(),
            *expected,
            "Display drifted for {}",
            variant_name(&error)
        );
    }
}
