//! Mutation tests for the artifact verifier: corrupt known-good schedules
//! and plans one invariant at a time and assert the verifier rejects each
//! corruption with the *specific* [`VerifyError`] variant — proving the
//! checks are neither vacuous nor cross-wired.

use holmes_analysis::progress::{
    check_progress_with_scenarios, check_scenario, AbstractLink, FailKind, ProgressCollective,
    ProgressEvent, ProgressSpec, ProgressVerdict, RetryModel, ScenarioEvent, WaitNode,
};
use holmes_analysis::{
    verify_collective, verify_dp_groups, verify_hetero_partition, verify_migration,
    verify_moves_executable, verify_partition, verify_plan, verify_replan,
    verify_schedule_structure, verify_stage_memory, VerifyError,
};
use holmes_netsim::algo::{CollKind, CollSchedule, Round, Transfer};
use holmes_parallel::{
    replan_for_delta, DeltaReplanOutcome, DpCollectiveAlgo, DpGroupNic, GroupLayout, GuidedPlanner,
    HolmesScheduler, MigrationCosts, ParallelDegrees, ParallelPlan, Scheduler, StageProfile,
    StateMove, StragglerAwarePartition, TopologyDelta,
};
use holmes_topology::{presets, NicProfile, NicType, Rank, Topology};

const V: u64 = 1 << 20;

fn topo() -> Topology {
    presets::homogeneous(NicType::InfiniBand, 2)
}

fn devices(n: u32) -> Vec<Rank> {
    (0..n).map(Rank).collect()
}

fn cluster_of(topo: &Topology) -> impl Fn(Rank) -> u32 + '_ {
    |r| topo.coord(r).map(|c| c.cluster.0).unwrap_or(0)
}

/// Rebuild a schedule with one mutation applied to its transfer matrix.
fn mutate(s: &CollSchedule, f: impl FnOnce(&mut Vec<Vec<Transfer>>)) -> CollSchedule {
    let mut rounds: Vec<Vec<Transfer>> =
        s.rounds().iter().map(|r| r.transfers().to_vec()).collect();
    f(&mut rounds);
    CollSchedule::from_rounds(rounds.into_iter().map(Round::new).collect())
}

fn errors_of(kind: CollKind, schedule: &CollSchedule, devs: &[Rank]) -> Vec<VerifyError> {
    let topo = topo();
    verify_collective(&topo, kind, devs, V, schedule)
}

#[test]
fn pristine_schedules_pass_for_every_kind() {
    let topo = topo();
    let devs = devices(8);
    for kind in [
        CollKind::AllReduce,
        CollKind::TreeAllReduce,
        CollKind::ReduceScatter,
        CollKind::AllGather,
        CollKind::Broadcast,
        CollKind::HierarchicalAllReduce,
    ] {
        let s = kind.schedule(&devs, V, cluster_of(&topo));
        let errs = verify_collective(&topo, kind, &devs, V, &s);
        assert!(errs.is_empty(), "{kind:?}: {errs:?}");
    }
    // Hierarchical over a genuinely two-cluster group.
    let topo = presets::same_nic_two_clusters(NicType::InfiniBand, 2);
    let devs: Vec<Rank> = (0..32).map(Rank).collect();
    let s = CollKind::HierarchicalAllReduce.schedule(&devs, V, cluster_of(&topo));
    let errs = verify_collective(&topo, CollKind::HierarchicalAllReduce, &devs, V, &s);
    assert!(errs.is_empty(), "{errs:?}");
}

#[test]
fn dropped_transfer_detected() {
    let devs = devices(8);
    let good = CollKind::AllReduce.schedule(&devs, V, |_| 0);
    let bad = mutate(&good, |rounds| {
        rounds[0].remove(0);
    });
    let errs = errors_of(CollKind::AllReduce, &bad, &devs);
    let chunk = V / 8;
    let expected = good.total_bytes();
    assert!(
        errs.contains(&VerifyError::ByteCountMismatch {
            expected,
            actual: expected - chunk,
        }),
        "{errs:?}"
    );
    assert!(
        errs.contains(&VerifyError::ShapeMismatch { round: 0 }),
        "{errs:?}"
    );
}

#[test]
fn silenced_member_detected() {
    let devs = devices(8);
    let good = CollKind::AllReduce.schedule(&devs, V, |_| 0);
    // Remove *every* transfer rank 0 sends: its shard never circulates.
    let bad = mutate(&good, |rounds| {
        for r in rounds {
            r.retain(|t| t.from != Rank(0));
        }
    });
    let errs = errors_of(CollKind::AllReduce, &bad, &devs);
    assert!(
        errs.contains(&VerifyError::MemberNeverSends { rank: Rank(0) }),
        "{errs:?}"
    );
}

#[test]
fn fattened_byte_count_detected() {
    let devs = devices(8);
    let good = CollKind::ReduceScatter.schedule(&devs, V, |_| 0);
    let bad = mutate(&good, |rounds| {
        rounds[0][0].bytes += 7;
    });
    let errs = errors_of(CollKind::ReduceScatter, &bad, &devs);
    let expected = good.total_bytes();
    assert!(
        errs.contains(&VerifyError::ByteCountMismatch {
            expected,
            actual: expected + 7,
        }),
        "{errs:?}"
    );
    assert!(
        errs.contains(&VerifyError::ShapeMismatch { round: 0 }),
        "{errs:?}"
    );
}

#[test]
fn reroute_to_rank_outside_topology_detected() {
    let devs = devices(8);
    let good = CollKind::AllReduce.schedule(&devs, V, |_| 0);
    let bad = mutate(&good, |rounds| {
        rounds[0][0].to = Rank(9999);
    });
    let errs = errors_of(CollKind::AllReduce, &bad, &devs);
    assert!(
        errs.contains(&VerifyError::UnknownRank {
            round: 0,
            rank: Rank(9999),
        }),
        "{errs:?}"
    );
}

#[test]
fn reroute_to_non_member_detected() {
    let devs = devices(8);
    let good = CollKind::AllReduce.schedule(&devs, V, |_| 0);
    // Rank 12 exists in the 16-device topology but is not a group member.
    let bad = mutate(&good, |rounds| {
        rounds[0][0].to = Rank(12);
    });
    let errs = errors_of(CollKind::AllReduce, &bad, &devs);
    assert!(
        errs.contains(&VerifyError::ForeignRank {
            round: 0,
            rank: Rank(12),
        }),
        "{errs:?}"
    );
}

#[test]
fn self_transfer_detected() {
    let devs = devices(8);
    let good = CollKind::Broadcast.schedule(&devs, V, |_| 0);
    let bad = mutate(&good, |rounds| {
        let from = rounds[0][0].from;
        rounds[0][0].to = from;
    });
    let errs = errors_of(CollKind::Broadcast, &bad, &devs);
    assert!(
        errs.iter()
            .any(|e| matches!(e, VerifyError::SelfTransfer { round: 0, .. })),
        "{errs:?}"
    );
}

#[test]
fn empty_round_detected() {
    let devs = devices(8);
    let good = CollKind::AllGather.schedule(&devs, V, |_| 0);
    let bad = mutate(&good, |rounds| {
        rounds.insert(2, Vec::new());
    });
    let errs = errors_of(CollKind::AllGather, &bad, &devs);
    assert!(
        errs.contains(&VerifyError::EmptyRound { round: 2 }),
        "{errs:?}"
    );
    assert!(
        errs.iter()
            .any(|e| matches!(e, VerifyError::RoundCountMismatch { .. })),
        "{errs:?}"
    );
}

#[test]
fn dropped_round_detected() {
    let devs = devices(8);
    let good = CollKind::AllReduce.schedule(&devs, V, |_| 0);
    let bad = mutate(&good, |rounds| {
        rounds.pop();
    });
    let errs = errors_of(CollKind::AllReduce, &bad, &devs);
    assert!(
        errs.contains(&VerifyError::RoundCountMismatch {
            expected: 14,
            actual: 13,
        }),
        "{errs:?}"
    );
    assert!(
        errs.iter()
            .any(|e| matches!(e, VerifyError::ByteCountMismatch { .. })),
        "{errs:?}"
    );
}

#[test]
fn duplicate_member_detected() {
    let topo = topo();
    let mut devs = devices(8);
    devs.push(Rank(3));
    let s = CollKind::AllReduce.schedule(&devices(8), V, |_| 0);
    let errs = verify_schedule_structure(&topo, &devs, &s);
    assert!(
        errs.contains(&VerifyError::DuplicateMember { rank: Rank(3) }),
        "{errs:?}"
    );
}

#[test]
fn hierarchical_mutations_detected() {
    let topo = presets::same_nic_two_clusters(NicType::InfiniBand, 2);
    let devs: Vec<Rank> = (0..32).map(Rank).collect();
    let good = CollKind::HierarchicalAllReduce.schedule(&devs, V, cluster_of(&topo));
    // Fatten one inter-cluster exchange transfer: byte conservation and
    // the phase shape both break.
    let inter_round = good
        .rounds()
        .iter()
        .position(|r| {
            r.transfers()
                .iter()
                .any(|t| cluster_of(&topo)(t.from) != cluster_of(&topo)(t.to))
        })
        .expect("hierarchical schedule has an exchange phase");
    let bad = mutate(&good, |rounds| {
        rounds[inter_round][0].bytes *= 2;
    });
    let errs = verify_collective(&topo, CollKind::HierarchicalAllReduce, &devs, V, &bad);
    assert!(
        errs.iter()
            .any(|e| matches!(e, VerifyError::ByteCountMismatch { .. })),
        "{errs:?}"
    );
    assert!(
        errs.contains(&VerifyError::ShapeMismatch { round: inter_round }),
        "{errs:?}"
    );
}

#[test]
fn dp_group_split_across_nic_types_detected() {
    // Cluster 0 is InfiniBand, cluster 1 RoCE; a group claiming
    // end-to-end IB over members of both violates §3.2 twice: not
    // NIC-homogeneous, and spanning clusters without flagging.
    let topo = presets::hybrid_two_cluster(2);
    let roce_member = topo.cluster_ranks(holmes_topology::ClusterId(1))[0];
    let group = DpGroupNic {
        group: 0,
        devices: vec![Rank(0), roce_member],
        rdma_nic: Some(NicType::InfiniBand),
        algo: DpCollectiveAlgo::RingRdma,
        forced_tcp: false,
    };
    let errs = verify_dp_groups(&topo, &[group]);
    assert!(
        errs.contains(&VerifyError::DpGroupNotHomogeneous { group: 0 }),
        "{errs:?}"
    );
    assert!(
        errs.contains(&VerifyError::DpGroupSpansClustersUnflagged { group: 0 }),
        "{errs:?}"
    );
}

#[test]
fn flagged_spanning_and_fallback_groups_pass() {
    let topo = presets::hybrid_two_cluster(2);
    let roce_member = topo.cluster_ranks(holmes_topology::ClusterId(1))[0];
    // Spanning group properly classified as hierarchical: fine.
    let hierarchical = DpGroupNic {
        group: 0,
        devices: vec![Rank(0), roce_member],
        rdma_nic: None,
        algo: DpCollectiveAlgo::HierarchicalTwoLevel,
        forced_tcp: false,
    };
    // Spanning group downgraded to TCP by a replan: also fine.
    let forced = DpGroupNic {
        group: 1,
        devices: vec![Rank(1), roce_member],
        rdma_nic: None,
        algo: DpCollectiveAlgo::RingEthernet,
        forced_tcp: true,
    };
    let errs = verify_dp_groups(&topo, &[hierarchical, forced]);
    assert!(errs.is_empty(), "{errs:?}");
}

#[test]
fn rdma_ring_without_nic_claim_detected() {
    let topo = topo();
    let group = DpGroupNic {
        group: 2,
        devices: devices(4),
        rdma_nic: None,
        algo: DpCollectiveAlgo::RingRdma,
        forced_tcp: false,
    };
    let errs = verify_dp_groups(&topo, &[group]);
    assert_eq!(errs, vec![VerifyError::DpGroupNotHomogeneous { group: 2 }]);
}

#[test]
fn partition_mutations_detected() {
    // Pristine Eq. 2 partition: conserved, non-empty, monotone.
    assert!(verify_partition(30, Some(&[2.0, 1.0]), &[17, 13]).is_empty());
    // Lost a layer.
    assert_eq!(
        verify_partition(30, None, &[17, 12]),
        vec![VerifyError::LayerSumMismatch {
            expected: 30,
            actual: 29,
        }]
    );
    // Starved stage.
    assert_eq!(
        verify_partition(30, None, &[30, 0]),
        vec![VerifyError::EmptyStage { stage: 1 }]
    );
    // Faster stage got fewer layers: Eq. 2 monotonicity broken.
    assert_eq!(
        verify_partition(30, Some(&[2.0, 1.0]), &[10, 20]),
        vec![VerifyError::NonMonotoneStages { fast: 0, slow: 1 }]
    );
}

#[test]
fn hetero_partition_mutations_detected() {
    // Three generations with distinct per-layer rates and DP comm terms —
    // the straggler-aware greedy path, not the Eq. 2 delegation.
    let stages = [
        StageProfile {
            speed_tflops: 989.0,
            sec_per_layer: 2.0e-4,
            comm_seconds: 1e-2,
        },
        StageProfile {
            speed_tflops: 312.0,
            sec_per_layer: 6.5e-4,
            comm_seconds: 3e-2,
        },
        StageProfile {
            speed_tflops: 125.0,
            sec_per_layer: 1.6e-3,
            comm_seconds: 5e-3,
        },
    ];
    // Pristine greedy output: conserved and skew-locally-optimal.
    let good = StragglerAwarePartition::default().partition_stages(36, &stages);
    assert!(verify_hetero_partition(36, &stages, &good).is_empty());

    // Lost a layer under non-uniform rates.
    let mut bad = good.clone();
    bad[0] -= 1;
    let errs = verify_hetero_partition(36, &stages, &bad);
    assert!(
        errs.contains(&VerifyError::HeteroPartitionSumMismatch {
            expected: 36,
            actual: 35,
        }),
        "{errs:?}"
    );

    // Pile the layers onto the slowest stage: a unique bottleneck either
    // faster stage could relieve — skew-monotonicity broken both ways.
    let errs = verify_hetero_partition(36, &stages, &[1, 1, 34]);
    assert!(
        errs.contains(&VerifyError::BottleneckReducible {
            stage: 2,
            better: 0
        }),
        "{errs:?}"
    );
    assert!(
        errs.contains(&VerifyError::BottleneckReducible {
            stage: 2,
            better: 1
        }),
        "{errs:?}"
    );

    // Profile/assignment arity mismatch short-circuits.
    assert_eq!(
        verify_hetero_partition(36, &stages, &[18, 18]),
        vec![VerifyError::StageCountMismatch {
            expected: 3,
            actual: 2,
        }]
    );
}

#[test]
fn stage_memory_mutations_detected() {
    // Fits (equality allowed): no errors.
    assert!(verify_stage_memory(&[(10, 20), (5, 5)]).is_empty());
    // One stage needs more than its smallest member holds.
    assert_eq!(
        verify_stage_memory(&[(10, 20), (6, 5)]),
        vec![VerifyError::StageOverMemberCapacity {
            stage: 1,
            needed_bytes: 6,
            capacity_bytes: 5,
        }]
    );
}

fn valid_plan(topo: &Topology) -> ParallelPlan {
    let degrees = ParallelDegrees::infer_data(1, 2, topo.device_count()).unwrap();
    let layout = GroupLayout::new(degrees);
    let assignment = HolmesScheduler.assign(topo, &layout);
    ParallelPlan::new(layout, assignment, vec![17, 13], true)
}

#[test]
fn pristine_plan_passes() {
    let topo = presets::hybrid_two_cluster(2);
    let plan = valid_plan(&topo);
    let errs = verify_plan(&topo, &plan, 30, None);
    assert!(errs.is_empty(), "{errs:?}");
}

#[test]
fn plan_layer_mutations_detected() {
    let topo = presets::hybrid_two_cluster(2);
    let mut plan = valid_plan(&topo);
    plan.stage_layers = vec![17, 14];
    let errs = verify_plan(&topo, &plan, 30, None);
    assert!(
        errs.contains(&VerifyError::LayerSumMismatch {
            expected: 30,
            actual: 31,
        }),
        "{errs:?}"
    );

    let mut plan = valid_plan(&topo);
    plan.stage_layers = vec![10, 10, 10];
    let errs = verify_plan(&topo, &plan, 30, None);
    assert!(
        errs.contains(&VerifyError::StageCountMismatch {
            expected: 2,
            actual: 3,
        }),
        "{errs:?}"
    );
}

/// A real migration-aware re-plan: drop one node of the hybrid fleet, so
/// the data degree shrinks and surviving replicas re-shard over the
/// simulated fabric (non-empty, priced move set).
fn valid_replan(topo: &Topology) -> DeltaReplanOutcome {
    let plan = valid_plan(topo);
    let mut delta = TopologyDelta::new();
    delta.node_loss(1);
    replan_for_delta(
        topo,
        &plan,
        &delta,
        1 << 30,
        &GuidedPlanner,
        &MigrationCosts::new(1 << 30, 30.0),
    )
    .unwrap()
}

#[test]
fn pristine_replan_passes() {
    let topo = presets::hybrid_two_cluster(2);
    let outcome = valid_replan(&topo);
    assert!(!outcome.migration.moves.is_empty());
    let errs = verify_replan(&outcome);
    assert!(errs.is_empty(), "{errs:?}");
}

#[test]
fn migration_move_mutations_detected() {
    let topo = presets::hybrid_two_cluster(2);
    let outcome = valid_replan(&topo);

    // Source rank outside the post-churn topology.
    let mut bad = outcome.migration.clone();
    bad.moves[0].from = Rank(9999);
    let errs = verify_migration(&outcome.new_topology, &bad);
    assert!(
        errs.contains(&VerifyError::MigrationRankUnknown {
            index: 0,
            rank: Rank(9999),
        }),
        "{errs:?}"
    );

    // A move copying a shard onto itself.
    let mut bad = outcome.migration.clone();
    let from = bad.moves[0].from;
    bad.moves[0].to = from;
    let errs = verify_migration(&outcome.new_topology, &bad);
    assert!(
        errs.contains(&VerifyError::MigrationSelfMove {
            index: 0,
            rank: from,
        }),
        "{errs:?}"
    );

    // Two shards landing on the same destination.
    let mut bad = outcome.migration.clone();
    let dup = bad.moves[0].to;
    bad.moves.push(StateMove {
        from: bad.moves[0].from,
        to: dup,
        bytes: 1,
    });
    let errs = verify_migration(&outcome.new_topology, &bad);
    assert!(
        errs.contains(&VerifyError::MigrationDuplicateDestination { rank: dup }),
        "{errs:?}"
    );
}

#[test]
fn migration_pricing_mutations_detected() {
    let topo = presets::hybrid_two_cluster(2);
    let outcome = valid_replan(&topo);

    // Moves claiming to be free: the fabric pricing never ran.
    let mut bad = outcome.migration.clone();
    bad.transfer_seconds = 0.0;
    let errs = verify_migration(&outcome.new_topology, &bad);
    assert!(
        errs.contains(&VerifyError::MigrationUnpriced {
            moves: bad.moves.len(),
        }),
        "{errs:?}"
    );

    // A group flagged for checkpoint restore with no restore billed.
    let mut bad = outcome.migration.clone();
    bad.restored_groups.push(0);
    let errs = verify_migration(&outcome.new_topology, &bad);
    assert!(
        errs.contains(&VerifyError::MigrationRestoreMismatch {
            restored: 1,
            seconds: 0.0,
        }),
        "{errs:?}"
    );

    // Restore time billed with nothing restored.
    let mut bad = outcome.migration.clone();
    bad.restore_seconds = 45.0;
    let errs = verify_migration(&outcome.new_topology, &bad);
    assert!(
        errs.contains(&VerifyError::MigrationRestoreMismatch {
            restored: 0,
            seconds: 45.0,
        }),
        "{errs:?}"
    );
}

#[test]
fn replan_coverage_mutations_detected() {
    // Verify the whole-outcome wrapper catches a placement that no longer
    // covers the post-churn device set: shrink the topology under the
    // outcome so the assignment both overflows and points off the end.
    let topo = presets::hybrid_two_cluster(2);
    let mut outcome = valid_replan(&topo);
    let small = presets::homogeneous(NicType::InfiniBand, 1);
    outcome.new_topology = small;
    let errs = verify_replan(&outcome);
    assert!(
        errs.iter()
            .any(|e| matches!(e, VerifyError::AssignmentSizeMismatch { .. })),
        "{errs:?}"
    );
    assert!(
        errs.iter()
            .any(|e| matches!(e, VerifyError::DeviceOutOfRange { .. })),
        "{errs:?}"
    );
}

#[test]
fn plan_assignment_mutations_detected() {
    // A plan whose layout wants the whole hybrid topology but whose
    // assignment covers a bigger, partly nonexistent device range.
    let topo = presets::hybrid_two_cluster(2);
    let small = presets::homogeneous(NicType::InfiniBand, 2);
    let plan = valid_plan(&topo);
    let errs = verify_plan(&small, &plan, 30, None);
    assert!(
        errs.iter()
            .any(|e| matches!(e, VerifyError::DeviceOutOfRange { .. })),
        "{errs:?}"
    );
}

// ---------------------------------------------------------------------------
// Progress-checker mutations: one deliberate corruption per property the
// symbolic checker proves, each yielding its *specific* typed
// counterexample.
// ---------------------------------------------------------------------------

/// A well-formed single-collective progress spec over the homogeneous
/// 2-node preset, with the default (bounded) retry model armed.
fn progress_spec(kind: CollKind) -> ProgressSpec {
    let topo = topo();
    let devs = devices(topo.device_count());
    ProgressSpec {
        collectives: vec![ProgressCollective::from_kind(&topo, kind, devs, V)],
        retry: Some(RetryModel::default()),
        has_trunk: false,
        extra_wait_edges: Vec::new(),
    }
}

#[test]
fn injected_wait_cycle_detected() {
    let topo = topo();
    let mut spec = progress_spec(CollKind::AllReduce);
    // Round 1 naturally waits on round 0; injecting the reverse edge
    // closes a cycle in the wait-for graph.
    spec.extra_wait_edges.push((
        WaitNode::Round { coll: 0, round: 0 },
        WaitNode::Round { coll: 0, round: 1 },
    ));
    let report = check_progress_with_scenarios(&topo, &spec, &[]);
    assert!(
        report.counterexamples.iter().any(|ce| matches!(
            ce.error,
            VerifyError::ProgressWaitCycle { collective: 0, .. }
        )),
        "{:?}",
        report.counterexamples
    );
}

#[test]
fn unbounded_retry_detected_as_livelock() {
    let topo = topo();
    let mut spec = progress_spec(CollKind::AllReduce);
    // Corruption: fuel bound removed. With both of node 0's NICs dead
    // there is no live route, so the retry loop never terminates.
    spec.retry = Some(RetryModel {
        max_retries: None,
        ..RetryModel::default()
    });
    let scenario = [
        ScenarioEvent {
            boundary: 0,
            event: ProgressEvent::LinkDown {
                link: AbstractLink::NodeRdma(0),
            },
        },
        ScenarioEvent {
            boundary: 0,
            event: ProgressEvent::LinkDown {
                link: AbstractLink::NodeEth(0),
            },
        },
    ];
    let (verdict, counterexamples) = check_scenario(&topo, &spec, &scenario);
    assert_eq!(verdict, ProgressVerdict::FailsFast(FailKind::Livelock));
    assert!(
        counterexamples.iter().any(|ce| matches!(
            ce.error,
            VerifyError::ProgressUnboundedRetry { collective: 0, .. }
        )),
        "{counterexamples:?}"
    );
}

#[test]
fn false_member_loss_claim_detected() {
    let topo = topo();
    let mut spec = progress_spec(CollKind::AllReduce);
    // Corruption: a ring all-reduce claiming to survive member loss. The
    // symbolic contribution-set run refutes the claim: a lost member's
    // shard never reaches the survivors.
    spec.collectives[0].claims_member_loss_tolerance = true;
    let report = check_progress_with_scenarios(&topo, &spec, &[]);
    assert!(
        report.counterexamples.iter().any(|ce| matches!(
            ce.error,
            VerifyError::MemberLossClaimMismatch {
                collective: 0,
                claimed: true,
                derived: false,
            }
        )),
        "{:?}",
        report.counterexamples
    );
}

#[test]
fn unexecutable_state_move_detected() {
    // A two-cluster fabric whose inter-cluster Ethernet has zero
    // bandwidth: any cross-cluster shard copy can never execute.
    let dead_eth = NicProfile {
        nic_type: NicType::Ethernet,
        bandwidth_gbps: 0.0,
        latency_us: 10.0,
        efficiency: 1.0,
        ports_per_node: 1,
        compute_interference: 1.0,
    };
    let topo = holmes_topology::TopologyBuilder::new()
        .cluster("a", 1, NicType::InfiniBand)
        .cluster("b", 1, NicType::InfiniBand)
        .inter_cluster_ethernet(dead_eth)
        .build()
        .expect("two-cluster build");
    let to = topo.cluster_ranks(holmes_topology::ClusterId(1))[0];
    let migration = holmes_parallel::MigrationPlan {
        moves: vec![StateMove {
            from: Rank(0),
            to,
            bytes: 1 << 20,
        }],
        restored_groups: Vec::new(),
        transfer_seconds: 1.0,
        restore_seconds: 0.0,
    };
    let errs = verify_moves_executable(&topo, &migration);
    assert_eq!(
        errs,
        vec![VerifyError::StateMoveUnroutable {
            index: 0,
            from: Rank(0),
            to,
        }]
    );
}

#[test]
fn parked_flows_without_retry_detected_as_stall() {
    let topo = topo();
    let mut spec = progress_spec(CollKind::AllReduce);
    // Corruption: retry machinery disarmed entirely. A dead RDMA link
    // parks its flows forever — the round barrier hangs.
    spec.retry = None;
    let scenario = [ScenarioEvent {
        boundary: 0,
        event: ProgressEvent::LinkDown {
            link: AbstractLink::NodeRdma(0),
        },
    }];
    let (verdict, counterexamples) = check_scenario(&topo, &spec, &scenario);
    assert_eq!(verdict, ProgressVerdict::FailsFast(FailKind::Stalled));
    assert!(
        counterexamples
            .iter()
            .any(|ce| matches!(ce.error, VerifyError::ProgressStall { collective: 0, .. })),
        "{counterexamples:?}"
    );
}
