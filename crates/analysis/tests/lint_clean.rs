//! The workspace's own source must pass `holmes-lint`: zero findings and
//! a fully-justified, non-stale allowlist. This is the `cargo test` face
//! of the CI lint job — a determinism hazard introduced anywhere in the
//! scanned crates fails the ordinary test run, not just CI.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the workspace root");
    let outcome = holmes_analysis::lint_workspace(root).expect("workspace sources are readable");
    assert!(outcome.files_scanned > 0, "scanned no files — wrong root?");
    assert!(
        outcome.is_clean(),
        "holmes-lint found problems:\n{}\n{}",
        outcome
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
        outcome.allowlist_problems.join("\n")
    );
}
