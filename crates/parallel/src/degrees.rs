//! Validated parallelism degree triples.

use std::fmt;

/// Error building [`ParallelDegrees`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeError {
    /// One of the degrees was zero.
    ZeroDegree,
    /// `t·p·d` did not equal the device count `N`.
    ProductMismatch {
        /// `t·p·d`.
        product: u64,
        /// Expected device count.
        devices: u32,
    },
}

impl fmt::Display for DegreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegreeError::ZeroDegree => write!(f, "parallel degrees must be positive"),
            DegreeError::ProductMismatch { product, devices } => {
                write!(
                    f,
                    "t*p*d = {product} but the topology has {devices} devices"
                )
            }
        }
    }
}

impl std::error::Error for DegreeError {}

/// Parallelism degrees `(t, p, d)` with the §2.4 invariant `t·p·d = N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelDegrees {
    /// Tensor parallel size `t` (≤ GPUs per node in practice).
    pub tensor: u32,
    /// Pipeline parallel size `p`.
    pub pipeline: u32,
    /// Data parallel size `d`.
    pub data: u32,
}

impl ParallelDegrees {
    /// Validate `(t, p, d)` against a device count.
    pub fn new(tensor: u32, pipeline: u32, data: u32, devices: u32) -> Result<Self, DegreeError> {
        if tensor == 0 || pipeline == 0 || data == 0 {
            return Err(DegreeError::ZeroDegree);
        }
        let product = u64::from(tensor) * u64::from(pipeline) * u64::from(data);
        if product != u64::from(devices) {
            return Err(DegreeError::ProductMismatch { product, devices });
        }
        Ok(ParallelDegrees {
            tensor,
            pipeline,
            data,
        })
    }

    /// Derive `d = N / (t·p)` from a device count.
    pub fn infer_data(tensor: u32, pipeline: u32, devices: u32) -> Result<Self, DegreeError> {
        if tensor == 0 || pipeline == 0 {
            return Err(DegreeError::ZeroDegree);
        }
        let tp = tensor * pipeline;
        if tp == 0 || !devices.is_multiple_of(tp) || devices == 0 {
            return Err(DegreeError::ProductMismatch {
                product: u64::from(tp),
                devices,
            });
        }
        Self::new(tensor, pipeline, devices / tp, devices)
    }

    /// Total devices `N = t·p·d`.
    #[inline]
    pub fn devices(&self) -> u32 {
        self.tensor * self.pipeline * self.data
    }
}

impl fmt::Display for ParallelDegrees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={} p={} d={}", self.tensor, self.pipeline, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_degrees() {
        let deg = ParallelDegrees::new(2, 4, 4, 32).unwrap();
        assert_eq!(deg.devices(), 32);
    }

    #[test]
    fn zero_degree_rejected() {
        assert_eq!(
            ParallelDegrees::new(0, 1, 1, 0),
            Err(DegreeError::ZeroDegree)
        );
    }

    #[test]
    fn product_mismatch_rejected() {
        assert!(matches!(
            ParallelDegrees::new(2, 2, 2, 16),
            Err(DegreeError::ProductMismatch {
                product: 8,
                devices: 16
            })
        ));
    }

    #[test]
    fn infer_data_divides() {
        let deg = ParallelDegrees::infer_data(1, 2, 32).unwrap();
        assert_eq!(deg.data, 16);
        assert!(ParallelDegrees::infer_data(1, 3, 32).is_err());
        assert!(ParallelDegrees::infer_data(0, 3, 32).is_err());
    }

    #[test]
    fn display_formats() {
        let deg = ParallelDegrees::new(8, 2, 2, 32).unwrap();
        assert_eq!(deg.to_string(), "t=8 p=2 d=2");
    }
}
