//! # holmes-parallel
//!
//! The parallel-group algebra and scheduling machinery of the Holmes paper.
//!
//! The paper formalizes distributed training as a scheduling problem
//! (§2.4): `N = t·p·d` devices are organized into tensor-, pipeline- and
//! data-parallel groups given by the matrices of Eqs. 1, 3 and 4. This
//! crate implements:
//!
//! * [`ParallelDegrees`] — validated `(t, p, d)` degree triples;
//! * [`GroupLayout`] — the exact `[TP]`, `[PP]`, `[DP]` matrices over
//!   *logical* ranks, with O(1) membership queries;
//! * [`DeviceAssignment`] + [`Scheduler`] — mapping logical ranks onto
//!   physical devices: the Megatron-style sequential order, an
//!   adversarial interleaved hostfile, and the NIC-aware Holmes order that
//!   aligns pipeline stages with cluster boundaries;
//! * [`NicSelectionReport`] — the paper's *Automatic NIC Selection*
//!   analysis: which data-parallel groups are NIC-homogeneous (and may use
//!   RDMA) and which are forced down to Ethernet;
//! * [`PartitionStrategy`] — *Uniform* vs *Self-Adapting* (Eq. 2) pipeline
//!   layer partitioning, plus the [`StragglerAwarePartition`] that
//!   generalizes Eq. 2 to per-stage heterogeneous device speeds;
//! * [`PlacementWorkload`] — the two-axis pricing signal (gradient bytes +
//!   per-device stage FLOPs) that lets every planner charge DP groups a
//!   compute-straggler tax on mixed-generation fleets (see [`skew`]);
//! * [`ParallelPlan`] — the assembled plan consumed by the engine;
//! * [`Planner`] — one interface over the three placement strategies:
//!   the [`HeuristicPlanner`] (fastest-first order, no search), the
//!   [`ExhaustivePlanner`] (all `M!` orders — the reference oracle), and
//!   the [`GuidedPlanner`] (branch-and-bound plan synthesis that returns
//!   the oracle's exact winner and scales to many-cluster fleets);
//! * [`TopologyDelta`] + [`replan_for_delta`] — typed membership churn
//!   (NIC loss, node loss, node join) and the migration-aware re-plan:
//!   the post-churn placement is re-synthesized through a [`Planner`] and
//!   the optimizer-state migration is priced by simulating the shard
//!   copies on the post-churn fabric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degrees;
pub mod delta;
mod groups;
mod nic_selection;
pub mod obs;
mod partition;
mod plan;
mod scheduler;
mod search;
pub mod skew;
mod straggler;
mod synth;

pub use degrees::{DegreeError, ParallelDegrees};
pub use delta::{
    replan_for_delta, replan_for_delta_with, DeltaError, DeltaEvent, DeltaReplanOutcome,
    MigrationCosts, MigrationPlan, StateMove, TopologyDelta,
};
pub use groups::GroupLayout;
pub use nic_selection::{DpCollectiveAlgo, DpGroupNic, NicSelectionReport, ReplanOutcome};
pub use partition::{PartitionStrategy, SelfAdaptingPartition, UniformPartition};
pub use plan::ParallelPlan;
pub use scheduler::{
    DeviceAssignment, HolmesScheduler, InterleavedScheduler, Scheduler, SequentialScheduler,
};
pub use search::{
    assignment_for_order, search_cluster_orders, search_cluster_orders_with_mode,
    search_cluster_orders_workload, search_cluster_orders_workload_with_mode, EvalMode,
    PlacementSearchResult,
};
pub use skew::PlacementWorkload;
pub use straggler::{StageProfile, StragglerAwarePartition};
pub use synth::{
    speed_rank_of, synthesize_placement, synthesize_placement_workload, ExhaustivePlanner,
    GuidedPlanner, HeuristicPlanner, Planner, SynthStats,
};
