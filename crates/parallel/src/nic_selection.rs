//! Automatic NIC Selection (§3.2).
//!
//! Holmes modifies NCCL/Megatron so that each data-parallel group is formed
//! from devices behind *one* NIC technology, letting the group communicate
//! over RDMA. This module implements the analysis side: given a layout and
//! a device assignment, classify every DP group, and score the plan's
//! data-parallel communication cost — the signal the Holmes planner uses to
//! choose between candidate assignments.

use holmes_topology::{NicType, Rank, Topology};

use crate::groups::GroupLayout;
use crate::scheduler::DeviceAssignment;

/// Which all-reduce algorithm a data-parallel group should run — derived
/// from the group's NIC classification and cluster span, and matching the
/// upgrade rule the engine's builder applies when it emits collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpCollectiveAlgo {
    /// Flat ring entirely on one cluster's RDMA fabric.
    RingRdma,
    /// Flat ring over Ethernet (single cluster, no RDMA reachable).
    RingEthernet,
    /// Two-level hierarchical all-reduce
    /// ([`holmes_netsim::algo::hierarchical_all_reduce`]): the group
    /// straddles clusters, so intra-cluster phases ride RDMA and only the
    /// exchange phase crosses the slow trunk.
    HierarchicalTwoLevel,
}

/// Classification of one data-parallel group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpGroupNic {
    /// Group index (row of `[DP]`).
    pub group: u32,
    /// Physical members.
    pub devices: Vec<Rank>,
    /// `Some(t)` when all members share NIC technology `t` *and* a single
    /// cluster (so RDMA is actually reachable); `None` when the group is
    /// forced down to Ethernet.
    pub rdma_nic: Option<NicType>,
    /// The collective algorithm selected for the group's gradient sync.
    pub algo: DpCollectiveAlgo,
    /// True when the group was downgraded to TCP by a re-planning pass
    /// ([`NicSelectionReport::replan_on_nic_loss`]): its members' NICs
    /// may still be mutually RDMA-compatible, but a failed NIC forces the
    /// whole group through the Ethernet fallback (paper §3.2).
    pub forced_tcp: bool,
}

impl DpGroupNic {
    /// Classify one data-parallel group from its physical member set:
    /// decide whether it can ride RDMA end-to-end and which collective
    /// algorithm its gradient sync should run.
    ///
    /// This is the *single* classification path: [`NicSelectionReport::analyze`]
    /// calls it per group, and the guided plan synthesizer
    /// ([`crate::GuidedPlanner`]) calls it on partially-built plans — both must
    /// see bit-identical classifications for the search bound to be exact
    /// at completion.
    pub fn analyze_group(topo: &Topology, group: u32, devices: Vec<Rank>) -> Self {
        let rdma_nic = Self::classify(topo, &devices);
        let algo = if Self::spans_clusters(topo, &devices) {
            DpCollectiveAlgo::HierarchicalTwoLevel
        } else if rdma_nic.is_some() {
            DpCollectiveAlgo::RingRdma
        } else {
            DpCollectiveAlgo::RingEthernet
        };
        DpGroupNic {
            group,
            devices,
            rdma_nic,
            algo,
            forced_tcp: false,
        }
    }

    /// `Some(nic)` when the device set can use RDMA end-to-end: identical
    /// RDMA-capable NIC technology and a single switched cluster.
    fn classify(topo: &Topology, devices: &[Rank]) -> Option<NicType> {
        let first = devices.first()?;
        let nic = topo.nic_type_of(*first).ok()?;
        if !nic.supports_rdma() {
            return None;
        }
        let cluster = topo.coord(*first).ok()?.cluster;
        if !topo.clusters()[cluster.0 as usize].has_switch {
            return None;
        }
        for r in &devices[1..] {
            if topo.nic_type_of(*r).ok()? != nic || topo.coord(*r).ok()?.cluster != cluster {
                return None;
            }
        }
        Some(nic)
    }

    /// True when the group's members live in more than one cluster.
    fn spans_clusters(topo: &Topology, devices: &[Rank]) -> bool {
        devices.split_first().is_some_and(|(&first, rest)| {
            let cluster = |r| topo.coord(r).map(|c| c.cluster).ok();
            rest.iter().any(|&r| cluster(r) != cluster(first))
        })
    }

    /// Analytic gradient-sync cost of this one group for `gradient_bytes`
    /// per rank, in seconds. Singleton groups synchronize nothing and cost
    /// exactly `0.0`.
    ///
    /// [`NicSelectionReport::dp_sync_cost_seconds`] is the max-fold of this
    /// function over a plan's groups; the guided synthesizer folds the same
    /// function incrementally as groups become determined, so partial-plan
    /// bounds and full-plan costs are bit-identical (`f64::max` over
    /// non-negative finite values is fold-order independent).
    pub fn sync_cost_seconds(&self, topo: &Topology, gradient_bytes: u64) -> f64 {
        let n = self.devices.len() as u32;
        if n <= 1 {
            return 0.0;
        }
        match self.algo {
            DpCollectiveAlgo::HierarchicalTwoLevel => holmes_netsim::algo::estimate_collective(
                topo,
                holmes_netsim::algo::CollKind::HierarchicalAllReduce,
                &self.devices,
                gradient_bytes,
            ),
            DpCollectiveAlgo::RingRdma | DpCollectiveAlgo::RingEthernet => {
                // Ring over the group's device order: bottleneck hop
                // binds — the uniform fold of the ring IR collapsed to
                // its closed form. Downgraded groups price every hop
                // over the Ethernet fallback even where the NICs are
                // still nominally RDMA-compatible.
                let mut bw = f64::INFINITY;
                let mut lat: f64 = 0.0;
                for (i, &a) in self.devices.iter().enumerate() {
                    let b = self.devices[(i + 1) % self.devices.len()];
                    let link = if self.forced_tcp {
                        topo.tcp_link_between(a, b)
                            .expect("candidate group members are ranks inside the topology")
                    } else {
                        topo.link_between(a, b)
                            .expect("candidate group members are ranks inside the topology")
                    };
                    bw = bw.min(link.bandwidth_bytes_per_sec);
                    lat = lat.max(link.latency_ns as f64 * 1e-9);
                }
                holmes_netsim::collective::ring_allreduce_seconds(n, gradient_bytes, bw, lat)
            }
        }
    }

    /// Straggler tax of this group at `stage_flops` of per-device stage
    /// work: the gap between the slowest and fastest members' compute
    /// times. Every collective the group runs waits for its slowest
    /// member, so a generation-straddling group stretches each step by
    /// exactly this gap. Compute-uniform groups (identical profiles) and
    /// `stage_flops == 0.0` both yield exactly `+0.0`, keeping historical
    /// costs bit-identical.
    pub fn straggler_skew_seconds(&self, topo: &Topology, stage_flops: f64) -> f64 {
        if self.devices.len() <= 1 || stage_flops <= 0.0 {
            return 0.0;
        }
        let mut slowest = 0.0f64;
        let mut fastest = f64::INFINITY;
        for &r in &self.devices {
            let t = topo
                .device(r)
                .expect("group members are ranks inside the topology")
                .gpu
                .compute_seconds(stage_flops);
            slowest = slowest.max(t);
            fastest = fastest.min(t);
        }
        slowest - fastest
    }

    /// Priced cost of this group under a [`crate::PlacementWorkload`]:
    /// NIC-priced gradient sync plus the compute-skew straggler tax.
    /// With [`crate::PlacementWorkload::gradient_only`] (or on any
    /// compute-uniform member set) the skew term is exactly `+0.0`, so
    /// the sum is bit-identical to [`DpGroupNic::sync_cost_seconds`].
    pub fn workload_cost_seconds(
        &self,
        topo: &Topology,
        workload: crate::skew::PlacementWorkload,
    ) -> f64 {
        self.sync_cost_seconds(topo, workload.gradient_bytes)
            + self.straggler_skew_seconds(topo, workload.stage_flops)
    }
}

/// Plan-wide Automatic NIC Selection report.
#[derive(Debug, Clone, PartialEq)]
pub struct NicSelectionReport {
    /// Per-group classification.
    pub groups: Vec<DpGroupNic>,
    /// Number of groups able to use RDMA.
    pub rdma_groups: u32,
    /// Number of groups forced down to Ethernet.
    pub ethernet_groups: u32,
}

impl NicSelectionReport {
    /// Analyze every data-parallel group of a plan.
    pub fn analyze(topo: &Topology, layout: &GroupLayout, assignment: &DeviceAssignment) -> Self {
        let mut groups = Vec::with_capacity(layout.dp_group_count() as usize);
        let mut rdma = 0u32;
        for i in 0..layout.dp_group_count() {
            let devices = assignment.map_group(&layout.dp_group(i));
            let g = DpGroupNic::analyze_group(topo, i, devices);
            if g.rdma_nic.is_some() {
                rdma += 1;
            }
            groups.push(g);
        }
        let total = groups.len() as u32;
        NicSelectionReport {
            groups,
            rdma_groups: rdma,
            ethernet_groups: total - rdma,
        }
    }

    /// Fraction of groups able to use RDMA (1.0 = perfect selection).
    pub fn rdma_fraction(&self) -> f64 {
        let total = self.groups.len();
        if total == 0 {
            return 1.0;
        }
        f64::from(self.rdma_groups) / total as f64
    }

    /// Analytic per-iteration data-parallel synchronization cost in
    /// seconds, for `gradient_bytes` of gradients per rank: the max over
    /// groups of the cost of the algorithm selected for each group — a
    /// ring all-reduce at the group's bottleneck pairwise bandwidth, or
    /// the hierarchical schedule's topology-aware fold when the group
    /// straddles clusters. Used by the planner to compare assignments
    /// cheaply.
    pub fn dp_sync_cost_seconds(&self, topo: &Topology, gradient_bytes: u64) -> f64 {
        self.groups.iter().fold(0.0f64, |worst, g| {
            worst.max(g.sync_cost_seconds(topo, gradient_bytes))
        })
    }

    /// [`NicSelectionReport::dp_sync_cost_seconds`] generalized to a
    /// [`crate::PlacementWorkload`]: the max over groups of sync cost plus
    /// straggler skew. Gradient-only workloads and compute-uniform fleets
    /// reproduce the historical fold bit-for-bit.
    pub fn dp_workload_cost_seconds(
        &self,
        topo: &Topology,
        workload: crate::skew::PlacementWorkload,
    ) -> f64 {
        self.groups.iter().fold(0.0f64, |worst, g| {
            worst.max(g.workload_cost_seconds(topo, workload))
        })
    }

    /// Re-plan after NIC loss: re-run NIC selection on the *degraded*
    /// topology — every node in `lost_nodes` (global node index,
    /// `rank / gpus_per_node`) is treated as RDMA-incapable — and
    /// downgrade every data-parallel group touching such a node to the
    /// TCP fallback (paper §3.2), instead of failing the run.
    ///
    /// Untouched groups keep their original classification (and cost)
    /// bit-for-bit; an empty `lost_nodes` returns the report unchanged.
    ///
    /// Thin wrapper over [`NicSelectionReport::replan`] with a delta of
    /// pure NIC losses.
    pub fn replan_on_nic_loss(
        &self,
        topo: &Topology,
        lost_nodes: &[u32],
        gradient_bytes: u64,
    ) -> ReplanOutcome {
        self.replan(
            topo,
            &crate::delta::TopologyDelta::nic_losses(lost_nodes),
            gradient_bytes,
        )
    }

    /// Re-plan *in place* under a typed [`crate::delta::TopologyDelta`]:
    /// every node the delta affects (NIC losses *and* node losses — a
    /// departing node's NIC is certainly unreachable) is treated as
    /// RDMA-incapable, and every data-parallel group touching one is
    /// downgraded to the TCP fallback (paper §3.2).
    ///
    /// This is the cheap degraded-mode path: membership (and hence the
    /// placement) is kept fixed, only transports change. When the delta
    /// contains node losses or joins the plan's device set is stale, and
    /// the migration-aware [`crate::delta::replan_for_delta`] is the
    /// right tool; this in-place pass still prices the transport hit of
    /// continuing on the old placement until the migration lands.
    pub fn replan(
        &self,
        topo: &Topology,
        delta: &crate::delta::TopologyDelta,
        gradient_bytes: u64,
    ) -> ReplanOutcome {
        let gpus_per_node = topo.gpus_per_node().max(1);
        let node_of = |r: Rank| r.0 / gpus_per_node;
        let lost: std::collections::HashSet<u32> = delta.affected_nodes().into_iter().collect();
        let cost_before_seconds = self.dp_sync_cost_seconds(topo, gradient_bytes);
        let mut groups = Vec::with_capacity(self.groups.len());
        let mut downgraded_groups = Vec::new();
        let mut rdma = 0u32;
        for g in &self.groups {
            let mut ng = g.clone();
            let touched = g.devices.iter().any(|&r| lost.contains(&node_of(r)));
            if touched && !g.forced_tcp {
                // A spanning group loses its hierarchical schedule too:
                // the intra-cluster phases assumed homogeneous RDMA.
                ng.rdma_nic = None;
                ng.algo = DpCollectiveAlgo::RingEthernet;
                ng.forced_tcp = true;
                downgraded_groups.push(g.group);
            }
            if ng.rdma_nic.is_some() {
                rdma += 1;
            }
            groups.push(ng);
        }
        let total = groups.len() as u32;
        let report = NicSelectionReport {
            groups,
            rdma_groups: rdma,
            ethernet_groups: total - rdma,
        };
        let cost_after_seconds = report.dp_sync_cost_seconds(topo, gradient_bytes);
        ReplanOutcome {
            report,
            downgraded_groups,
            cost_before_seconds,
            cost_after_seconds,
        }
    }
}

/// Result of [`NicSelectionReport::replan_on_nic_loss`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanOutcome {
    /// The re-classified report on the degraded topology.
    pub report: NicSelectionReport,
    /// Groups downgraded from RDMA (or hierarchical) to the TCP
    /// fallback, in group order.
    pub downgraded_groups: Vec<u32>,
    /// Analytic DP sync cost before the loss, seconds.
    pub cost_before_seconds: f64,
    /// Analytic DP sync cost after the downgrade, seconds.
    pub cost_after_seconds: f64,
}

impl ReplanOutcome {
    /// Relative slowdown of data-parallel sync caused by the loss
    /// (1.0 = unchanged).
    pub fn slowdown(&self) -> f64 {
        if self.cost_before_seconds <= 0.0 {
            return 1.0;
        }
        self.cost_after_seconds / self.cost_before_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::ParallelDegrees;
    use crate::scheduler::{HolmesScheduler, InterleavedScheduler, Scheduler};
    use holmes_topology::presets;

    fn layout_for(topo: &Topology, t: u32, p: u32) -> GroupLayout {
        GroupLayout::new(ParallelDegrees::infer_data(t, p, topo.device_count()).unwrap())
    }

    #[test]
    fn holmes_assignment_gives_all_rdma_groups_on_hybrid() {
        let topo = presets::hybrid_two_cluster(2);
        let layout = layout_for(&topo, 1, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        assert_eq!(report.ethernet_groups, 0);
        assert_eq!(report.rdma_fraction(), 1.0);
        // One stage's groups are IB, the other's RoCE.
        let nics: std::collections::BTreeSet<_> =
            report.groups.iter().map(|g| g.rdma_nic).collect();
        assert!(nics.contains(&Some(NicType::InfiniBand)));
        assert!(nics.contains(&Some(NicType::RoCE)));
    }

    #[test]
    fn interleaved_assignment_breaks_every_group_on_hybrid() {
        let topo = presets::hybrid_two_cluster(2);
        let layout = layout_for(&topo, 1, 2);
        let a = InterleavedScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        // Each stage (16 logical ranks = 2 physical nodes) now mixes an IB
        // node and a RoCE node, so every DP group is heterogeneous.
        assert_eq!(report.rdma_groups, 0);
        assert_eq!(report.rdma_fraction(), 0.0);
    }

    #[test]
    fn ethernet_only_topology_has_no_rdma_groups() {
        let topo = presets::homogeneous(NicType::Ethernet, 4);
        let layout = layout_for(&topo, 1, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        assert_eq!(report.rdma_groups, 0);
    }

    #[test]
    fn homogeneous_ib_topology_is_fully_rdma() {
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let layout = layout_for(&topo, 1, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        assert_eq!(report.rdma_fraction(), 1.0);
        assert!(report
            .groups
            .iter()
            .all(|g| g.rdma_nic == Some(NicType::InfiniBand)));
    }

    #[test]
    fn dp_cost_lower_for_holmes_than_interleaved() {
        let topo = presets::hybrid_two_cluster(2);
        let layout = layout_for(&topo, 1, 2);
        let grad = 1u64 << 30;
        let holmes =
            NicSelectionReport::analyze(&topo, &layout, &HolmesScheduler.assign(&topo, &layout));
        let inter = NicSelectionReport::analyze(
            &topo,
            &layout,
            &InterleavedScheduler.assign(&topo, &layout),
        );
        let c_h = holmes.dp_sync_cost_seconds(&topo, grad);
        let c_i = inter.dp_sync_cost_seconds(&topo, grad);
        assert!(c_h < c_i, "holmes {c_h} vs interleaved {c_i}");
    }

    #[test]
    fn single_cluster_groups_select_flat_rings() {
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let layout = layout_for(&topo, 1, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        assert!(report
            .groups
            .iter()
            .all(|g| g.algo == DpCollectiveAlgo::RingRdma));
        let topo = presets::homogeneous(NicType::Ethernet, 4);
        let a = HolmesScheduler.assign(&topo, &layout_for(&topo, 1, 2));
        let report = NicSelectionReport::analyze(&topo, &layout_for(&topo, 1, 2), &a);
        assert!(report
            .groups
            .iter()
            .all(|g| g.algo == DpCollectiveAlgo::RingEthernet));
    }

    #[test]
    fn spanning_groups_select_hierarchical_and_score_below_flat_ring() {
        // p = 1 → every DP group covers all 32 devices of both clusters.
        let topo = presets::same_nic_two_clusters(NicType::InfiniBand, 2);
        let layout = layout_for(&topo, 1, 1);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        assert!(report
            .groups
            .iter()
            .all(|g| g.algo == DpCollectiveAlgo::HierarchicalTwoLevel));
        // The hierarchical score must beat the flat ring the old scorer
        // would have priced over the same (Ethernet-crossing) ring.
        let grad = 1u64 << 30;
        let hier = report.dp_sync_cost_seconds(&topo, grad);
        let g = &report.groups[0];
        let mut bw = f64::INFINITY;
        let mut lat: f64 = 0.0;
        for (i, &a) in g.devices.iter().enumerate() {
            let b = g.devices[(i + 1) % g.devices.len()];
            let link = topo.link_between(a, b).unwrap();
            bw = bw.min(link.bandwidth_bytes_per_sec);
            lat = lat.max(link.latency_ns as f64 * 1e-9);
        }
        let flat = holmes_netsim::collective::ring_allreduce_seconds(
            g.devices.len() as u32,
            grad,
            bw,
            lat,
        );
        assert!(hier < flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn replan_downgrades_only_groups_touching_the_lost_nic() {
        let topo = presets::hybrid_two_cluster(2);
        let layout = layout_for(&topo, 1, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        assert_eq!(report.ethernet_groups, 0);
        let grad = 1u64 << 30;
        // Node 0 dies. Groups containing its ranks fall back to TCP.
        let outcome = report.replan_on_nic_loss(&topo, &[0], grad);
        assert!(!outcome.downgraded_groups.is_empty());
        let g0 = topo.gpus_per_node();
        for g in &outcome.report.groups {
            let touched = g.devices.iter().any(|&r| r.0 / g0 == 0);
            assert_eq!(g.forced_tcp, touched, "group {}", g.group);
            if touched {
                assert_eq!(g.algo, DpCollectiveAlgo::RingEthernet);
                assert_eq!(g.rdma_nic, None);
            }
        }
        // Some groups survive untouched on this layout.
        assert!(outcome.report.rdma_groups > 0);
        assert!(
            outcome.report.rdma_groups < report.rdma_groups,
            "loss must cost some groups their RDMA"
        );
        // TCP pricing makes the degraded plan strictly slower.
        assert!(
            outcome.cost_after_seconds > outcome.cost_before_seconds,
            "after {} vs before {}",
            outcome.cost_after_seconds,
            outcome.cost_before_seconds
        );
        assert!(outcome.slowdown() > 1.0);
    }

    #[test]
    fn replan_with_no_losses_is_identity() {
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let layout = layout_for(&topo, 1, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        let outcome = report.replan_on_nic_loss(&topo, &[], 1 << 30);
        assert_eq!(outcome.report, report);
        assert!(outcome.downgraded_groups.is_empty());
        assert_eq!(outcome.slowdown(), 1.0);
    }

    #[test]
    fn replan_downgrades_spanning_groups_to_flat_ethernet() {
        let topo = presets::same_nic_two_clusters(NicType::InfiniBand, 2);
        let layout = layout_for(&topo, 1, 1);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        assert!(report
            .groups
            .iter()
            .all(|g| g.algo == DpCollectiveAlgo::HierarchicalTwoLevel));
        let outcome = report.replan_on_nic_loss(&topo, &[1], 1 << 30);
        assert!(outcome
            .report
            .groups
            .iter()
            .all(|g| g.algo == DpCollectiveAlgo::RingEthernet && g.forced_tcp));
        assert!(outcome.cost_after_seconds > outcome.cost_before_seconds);
    }

    #[test]
    fn singleton_dp_groups_cost_nothing() {
        let topo = presets::homogeneous(NicType::InfiniBand, 2);
        // d=1: t=8, p=2 over 16 devices.
        let layout = layout_for(&topo, 8, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        let report = NicSelectionReport::analyze(&topo, &layout, &a);
        assert_eq!(report.dp_sync_cost_seconds(&topo, 1 << 30), 0.0);
    }
}
