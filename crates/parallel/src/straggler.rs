//! Straggler-aware pipeline partitioning over heterogeneous stage speeds.
//!
//! Eq. 2 ([`crate::SelfAdaptingPartition`]) splits layers proportionally
//! to one calibrated scalar speed per stage — exact when every device in a
//! stage computes at the same rate, so a stage's time is linear in its
//! layer count. On a mixed-generation fleet that linearity breaks twice:
//!
//! * a stage's compute time is governed by its **slowest member** (every
//!   pipeline send waits for the straggler), so the per-layer cost is a
//!   `max` over member rates, not an average;
//! * stages pay **different fixed communication costs** (their DP groups'
//!   NIC-priced sync), which proportional splitting cannot see.
//!
//! [`StragglerAwarePartition`] therefore balances the *completion time*
//! `f_i = comm_i + n_i · sec_per_layer_i` directly: seed every stage with
//! one layer (when `layers ≥ p`), then give each remaining layer to the
//! stage whose finish time would grow the least — the greedy argmin of
//! `comm_i + (n_i + 1) · sec_per_layer_i`, lowest index on ties.
//!
//! The greedy result is **locally optimal**: when the bottleneck stage `b`
//! received its last layer (say as the `k`-th greedy pick), every other
//! stage `j` satisfied `f_b ≤ comm_j + (n_j(k)+1)·s_j ≤ comm_j +
//! (n_j+1)·s_j`, so moving any single layer off `b` cannot strictly lower
//! the bottleneck — exactly the invariant the analysis verifier's
//! skew-monotonicity rule checks.
//!
//! When every stage's `sec_per_layer` is bit-equal the completion-time
//! objective carries no information Eq. 2 lacks, so the partition
//! **delegates verbatim** to [`crate::SelfAdaptingPartition`] over the
//! stages' calibrated speeds — compute-uniform fleets reproduce the
//! historical Eq. 2 split bit-for-bit, α and all.

use crate::partition::{PartitionStrategy, SelfAdaptingPartition};

/// What the straggler-aware partition knows about one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageProfile {
    /// The stage's Eq. 2 calibrated speed (Table 1 NIC-coupled TFLOPS) —
    /// the delegation path's input when compute is uniform.
    pub speed_tflops: f64,
    /// Seconds the stage's *slowest* member needs per layer of work.
    pub sec_per_layer: f64,
    /// Fixed per-iteration communication charged to the stage (its worst
    /// DP group's NIC-priced sync), independent of the layer count.
    pub comm_seconds: f64,
}

impl StageProfile {
    /// Profile of a stage with no fixed communication term.
    pub fn compute_only(speed_tflops: f64, sec_per_layer: f64) -> Self {
        StageProfile {
            speed_tflops,
            sec_per_layer,
            comm_seconds: 0.0,
        }
    }

    /// The stage's finish time carrying `n` layers.
    fn finish_seconds(&self, n: u32) -> f64 {
        self.comm_seconds + f64::from(n) * self.sec_per_layer
    }
}

/// The Eq. 2 generalization for heterogeneous stage speeds: balance
/// per-stage completion times (`max` over members' compute plus the
/// stage's fixed communication) instead of splitting proportionally to
/// one scalar speed. See the module docs for the algorithm and its
/// bit-for-bit degeneration to [`SelfAdaptingPartition`].
#[derive(Debug, Clone, Copy)]
pub struct StragglerAwarePartition {
    /// The Eq. 2 α hyper-parameter, forwarded to the delegation path
    /// (paper default 1.05). The greedy path balances exact finish times
    /// and does not need the over-allocation knob.
    pub alpha: f64,
}

impl Default for StragglerAwarePartition {
    fn default() -> Self {
        StragglerAwarePartition { alpha: 1.05 }
    }
}

impl StragglerAwarePartition {
    /// Layers per stage for heterogeneous stage profiles. Sums to
    /// `layers`; every stage gets at least one layer when `layers ≥ p`.
    ///
    /// # Panics
    /// Panics on empty `stages` or any non-positive `sec_per_layer` /
    /// `speed_tflops`, or negative `comm_seconds`.
    pub fn partition_stages(&self, layers: u32, stages: &[StageProfile]) -> Vec<u32> {
        let p = stages.len();
        assert!(p > 0, "at least one stage");
        assert!(
            stages
                .iter()
                .all(|s| s.sec_per_layer > 0.0 && s.speed_tflops > 0.0),
            "stage speeds must be positive"
        );
        assert!(
            stages.iter().all(|s| s.comm_seconds >= 0.0),
            "communication costs must be non-negative"
        );

        // Compute-uniform stages: the finish-time objective degenerates,
        // so reproduce Eq. 2 bit-for-bit over the calibrated speeds.
        let first = stages[0].sec_per_layer.to_bits();
        if stages.iter().all(|s| s.sec_per_layer.to_bits() == first) {
            let speeds: Vec<f64> = stages.iter().map(|s| s.speed_tflops).collect();
            return SelfAdaptingPartition { alpha: self.alpha }.partition(layers, &speeds);
        }

        let mut out = vec![0u32; p];
        let mut remaining = layers;
        // Feasibility seed: one layer per stage, matching the Eq. 2 rule
        // that every stage holds at least one layer when possible.
        if remaining >= p as u32 {
            out.iter_mut().for_each(|n| *n = 1);
            remaining -= p as u32;
        }
        for _ in 0..remaining {
            // Argmin of the post-assignment finish time; a strict `<`
            // keeps ties at the lowest stage index.
            let mut next = 0usize;
            for i in 1..p {
                let challenger = stages[i].finish_seconds(out[i] + 1);
                let incumbent = stages[next].finish_seconds(out[next] + 1);
                if challenger.total_cmp(&incumbent).is_lt() {
                    next = i;
                }
            }
            out[next] += 1;
        }
        debug_assert_eq!(out.iter().sum::<u32>(), layers);
        out
    }
}

impl PartitionStrategy for StragglerAwarePartition {
    /// [`PartitionStrategy`] adapter: scalar speeds only, so each stage's
    /// per-layer time is `1/speed` and communication is zero. Equal-speed
    /// inputs delegate to Eq. 2 like [`Self::partition_stages`].
    fn partition(&self, layers: u32, stage_speeds: &[f64]) -> Vec<u32> {
        let stages: Vec<StageProfile> = stage_speeds
            .iter()
            .map(|&s| {
                assert!(s > 0.0, "stage speeds must be positive");
                StageProfile::compute_only(s, 1.0 / s)
            })
            .collect();
        self.partition_stages(layers, &stages)
    }

    fn name(&self) -> &'static str {
        "straggler-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles(specs: &[(f64, f64, f64)]) -> Vec<StageProfile> {
        specs
            .iter()
            .map(
                |&(speed_tflops, sec_per_layer, comm_seconds)| StageProfile {
                    speed_tflops,
                    sec_per_layer,
                    comm_seconds,
                },
            )
            .collect()
    }

    /// Max finish time of a candidate assignment.
    fn bottleneck(stages: &[StageProfile], out: &[u32]) -> f64 {
        stages
            .iter()
            .zip(out)
            .map(|(s, &n)| s.finish_seconds(n))
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn uniform_compute_delegates_to_eq2_bitwise() {
        // Table 1 speeds with identical per-layer compute: exactly the
        // historical Eq. 2 split (17/13 on 30 layers).
        let stages = profiles(&[(197.0, 2e-3, 0.1), (160.0, 2e-3, 0.4)]);
        let got = StragglerAwarePartition::default().partition_stages(30, &stages);
        let eq2 = SelfAdaptingPartition { alpha: 1.05 }.partition(30, &[197.0, 160.0]);
        assert_eq!(got, eq2);
        assert_eq!(got, vec![17, 13]);
    }

    #[test]
    fn slower_compute_gets_fewer_layers() {
        // Stage 1's slowest member takes 4× longer per layer.
        let stages = profiles(&[(197.0, 1e-3, 0.0), (197.0, 4e-3, 0.0)]);
        let out = StragglerAwarePartition::default().partition_stages(30, &stages);
        assert_eq!(out.iter().sum::<u32>(), 30);
        assert!(out[0] > out[1], "{out:?}");
        // 4:1 rate ratio → ~24/6 split balances finish times.
        assert_eq!(out, vec![24, 6]);
    }

    #[test]
    fn heavy_communication_offloads_layers() {
        // Equal compute rates but distinct (so the greedy path runs);
        // stage 1 pays a large fixed comm term and must carry less.
        let stages = profiles(&[(197.0, 1e-3, 0.0), (197.0, 1.0001e-3, 2e-2)]);
        let out = StragglerAwarePartition::default().partition_stages(40, &stages);
        assert_eq!(out.iter().sum::<u32>(), 40);
        assert!(out[0] > out[1], "{out:?}");
    }

    #[test]
    fn every_stage_keeps_a_layer_when_feasible() {
        let stages = profiles(&[(989.0, 1e-4, 0.0), (125.0, 8e-4, 0.0), (125.0, 8e-4, 0.5)]);
        let out = StragglerAwarePartition::default().partition_stages(8, &stages);
        assert_eq!(out.iter().sum::<u32>(), 8);
        assert!(out.iter().all(|&n| n >= 1), "{out:?}");
    }

    #[test]
    fn fewer_layers_than_stages_still_conserves() {
        let stages = profiles(&[(197.0, 1e-3, 0.0), (197.0, 2e-3, 0.0), (197.0, 3e-3, 0.0)]);
        let out = StragglerAwarePartition::default().partition_stages(2, &stages);
        assert_eq!(out.iter().sum::<u32>(), 2);
        // Stage 0 at 2·1e-3 ties stage 1 at 1·2e-3 for the second layer;
        // ties resolve to the lowest index.
        assert_eq!(out, vec![2, 0, 0]);
    }

    #[test]
    fn greedy_is_locally_optimal() {
        // No single-layer move may strictly lower the bottleneck.
        let stages = profiles(&[
            (989.0, 2.0e-4, 1e-2),
            (312.0, 6.5e-4, 3e-2),
            (125.0, 1.6e-3, 5e-3),
        ]);
        let out = StragglerAwarePartition::default().partition_stages(36, &stages);
        assert_eq!(out.iter().sum::<u32>(), 36);
        let best = bottleneck(&stages, &out);
        for from in 0..stages.len() {
            for to in 0..stages.len() {
                if from == to || out[from] <= 1 {
                    continue;
                }
                let mut moved = out.clone();
                moved[from] -= 1;
                moved[to] += 1;
                assert!(
                    bottleneck(&stages, &moved) >= best - 1e-15,
                    "move {from}->{to} beat the greedy: {moved:?} vs {out:?}"
                );
            }
        }
    }

    #[test]
    fn trait_adapter_reports_and_delegates() {
        let strategy = StragglerAwarePartition::default();
        assert_eq!(strategy.name(), "straggler-aware");
        // Equal scalar speeds → equal sec_per_layer → Eq. 2 delegation.
        let got = strategy.partition(36, &[10.0, 10.0, 10.0]);
        let eq2 = SelfAdaptingPartition { alpha: 1.05 }.partition(36, &[10.0, 10.0, 10.0]);
        assert_eq!(got, eq2);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stages_rejected() {
        StragglerAwarePartition::default().partition_stages(10, &[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_rate_rejected() {
        let stages = profiles(&[(197.0, 0.0, 0.0)]);
        StragglerAwarePartition::default().partition_stages(10, &stages);
    }
}
