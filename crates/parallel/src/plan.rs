//! The assembled parallel plan consumed by the training engine.

use holmes_topology::{Rank, Topology};

use crate::degrees::ParallelDegrees;
use crate::groups::GroupLayout;
use crate::nic_selection::NicSelectionReport;
use crate::scheduler::DeviceAssignment;

/// Everything the engine needs to execute one training iteration:
/// the group algebra, the logical→physical mapping, and the pipeline
/// layer partition.
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    /// Group layout over logical ranks.
    pub layout: GroupLayout,
    /// Logical→physical device mapping.
    pub assignment: DeviceAssignment,
    /// Transformer layers assigned to each pipeline stage
    /// (`len == p`, sums to the model's layer count).
    pub stage_layers: Vec<u32>,
    /// Whether Megatron's scatter/gather optimization shrinks p2p
    /// activations by `t` (the paper enables it).
    pub scatter_gather: bool,
}

impl ParallelPlan {
    /// Construct a plan; validates stage count and layer totals lazily via
    /// debug assertions (the engine re-validates against the model).
    pub fn new(
        layout: GroupLayout,
        assignment: DeviceAssignment,
        stage_layers: Vec<u32>,
        scatter_gather: bool,
    ) -> Self {
        debug_assert_eq!(stage_layers.len() as u32, layout.degrees().pipeline);
        debug_assert_eq!(assignment.len(), layout.degrees().devices());
        ParallelPlan {
            layout,
            assignment,
            stage_layers,
            scatter_gather,
        }
    }

    /// Degrees shorthand.
    #[inline]
    pub fn degrees(&self) -> ParallelDegrees {
        self.layout.degrees()
    }

    /// Physical devices of pipeline parallel group `i`, stage order.
    pub fn pp_group_devices(&self, i: u32) -> Vec<Rank> {
        self.assignment.map_group(&self.layout.pp_group(i))
    }

    /// Physical devices of data parallel group `i`.
    pub fn dp_group_devices(&self, i: u32) -> Vec<Rank> {
        self.assignment.map_group(&self.layout.dp_group(i))
    }

    /// Physical devices of tensor parallel group `i`.
    pub fn tp_group_devices(&self, i: u32) -> Vec<Rank> {
        self.assignment.map_group(&self.layout.tp_group(i))
    }

    /// Physical devices on a pipeline stage.
    pub fn stage_devices(&self, stage: u32) -> Vec<Rank> {
        self.assignment.map_group(&self.layout.stage_ranks(stage))
    }

    /// Pipeline stage of a physical device.
    pub fn stage_of_device(&self, device: Rank) -> u32 {
        self.layout.stage_of(self.assignment.logical_of(device))
    }

    /// Automatic-NIC-Selection analysis of this plan on a topology.
    pub fn nic_report(&self, topo: &Topology) -> NicSelectionReport {
        NicSelectionReport::analyze(topo, &self.layout, &self.assignment)
    }

    /// Total layers across stages.
    pub fn total_layers(&self) -> u32 {
        self.stage_layers.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{HolmesScheduler, Scheduler};
    use holmes_topology::presets;

    fn plan_on_hybrid() -> (Topology, ParallelPlan) {
        let topo = presets::hybrid_two_cluster(2);
        let degrees = ParallelDegrees::infer_data(1, 2, topo.device_count()).unwrap();
        let layout = GroupLayout::new(degrees);
        let assignment = HolmesScheduler.assign(&topo, &layout);
        let plan = ParallelPlan::new(layout, assignment, vec![17, 13], true);
        (topo, plan)
    }

    #[test]
    fn plan_group_queries_are_consistent() {
        let (_, plan) = plan_on_hybrid();
        let pp = plan.pp_group_devices(0);
        assert_eq!(pp.len(), 2);
        assert_eq!(plan.stage_of_device(pp[0]), 0);
        assert_eq!(plan.stage_of_device(pp[1]), 1);
    }

    #[test]
    fn stage_devices_cover_each_stage() {
        let (_, plan) = plan_on_hybrid();
        let s0 = plan.stage_devices(0);
        let s1 = plan.stage_devices(1);
        assert_eq!(s0.len(), 16);
        assert_eq!(s1.len(), 16);
        for d in &s0 {
            assert_eq!(plan.stage_of_device(*d), 0);
        }
    }

    #[test]
    fn nic_report_through_plan() {
        let (topo, plan) = plan_on_hybrid();
        assert_eq!(plan.nic_report(&topo).ethernet_groups, 0);
    }

    #[test]
    fn layer_totals() {
        let (_, plan) = plan_on_hybrid();
        assert_eq!(plan.total_layers(), 30);
    }
}
