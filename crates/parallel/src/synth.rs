//! Guided plan synthesis: best-first branch-and-bound over partial plans.
//!
//! [`crate::search_cluster_orders`] enumerates all `M!` cluster orders — fine as a
//! reference oracle at 2–4 clusters, hopeless at fleet scale. This module
//! replaces enumeration with an A*-style search over *partial plans*:
//!
//! * **State** — a prefix of the cluster visit order. Under the
//!   order-concatenation assignment ([`assignment_for_order`]) a prefix
//!   pins the devices of logical ranks `0..n`, which fully determines
//!   every data-parallel group whose members all fall below `n`. The
//!   state carries that pinned assignment and the exact cost of each
//!   determined group (the "NIC assignment so far"); degrees and the
//!   partition α enter one level up, where [`Planner`] callers fix the
//!   [`GroupLayout`] per candidate `(t, p)`.
//! * **Bound** — the plan cost is a max-fold of per-group sync costs
//!   ([`crate::NicSelectionReport::dp_sync_cost_seconds`]), so the fold
//!   over the *determined* groups is an admissible lower bound: adding
//!   groups can only raise a max of non-negative terms, and at a complete
//!   state the bound *is* the exact cost, bit-for-bit (`f64::max` over
//!   non-negative finite values is fold-order independent). When every
//!   cluster size is a multiple of the stage block `t·d`, each cluster
//!   hosts the same groups wherever it lands, so the fold additionally
//!   includes each unvisited cluster's own future group costs — the
//!   alignment floor that lets aligned fleets plan in `O(M²)` expansions.
//! * **Expansion order** — a min-heap keyed on `(bound, canonical prefix,
//!   seq)`. The canonical key is the prefix relabeled by
//!   [`HolmesScheduler::cluster_order`] position; because the bound is
//!   monotone along a path and a prefix is lexicographically below its
//!   extensions, keys strictly increase along every path, so the *first
//!   complete state popped* is the optimum with the canonical tie-break —
//!   the exact winner [`crate::search_cluster_orders`]'s `CanonicalBest` computes by
//!   enumeration.
//! * **Pruning** — three sound rules, all counted in [`SynthStats`]:
//!   *bound* (a successor whose bound reaches the heuristic incumbent can
//!   never beat it — the incumbent's canonical key `[0, 1, …]` is the
//!   global lexicographic minimum, so it also wins every cost tie);
//!   *dominance* (two states over the same cluster *set* whose boundary
//!   splits no group share all future costs, so the one with the larger
//!   bound and larger canonical prefix is never part of the canonical
//!   winner); *symmetry* (structurally identical clusters are
//!   interchangeable, and the canonical winner visits the members of each
//!   such class in ascending canonical rank, so only the lowest-ranked
//!   unvisited member of each class is ever appended).
//!
//! The equivalence tests (and the proptest harness in the workspace
//! `tests/`) assert the guided winner matches the exhaustive winner —
//! identical order and bit-equal cost — on every preset small enough to
//! enumerate.

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};

use holmes_topology::{Cluster, ClusterId, Rank, Topology};

use crate::groups::GroupLayout;
use crate::nic_selection::DpGroupNic;
use crate::scheduler::HolmesScheduler;
use crate::search::{
    assignment_for_order, cost_of_order_workload, search_cluster_orders_workload_with_mode,
    EvalMode, PlacementSearchResult,
};
use crate::skew::PlacementWorkload;

/// Position of every cluster in the canonical fastest-first order:
/// `speed_rank_of(topo)[cluster.0] = position` in
/// [`HolmesScheduler::cluster_order`]. This relabeling is the planning
/// stack's shared tie-break alphabet: among equal-cost orders every
/// strategy prefers the one whose relabeled sequence is lexicographically
/// smallest, which makes the heuristic's own order (relabeled `[0, 1, …]`)
/// the canonical winner of any tie it participates in.
pub fn speed_rank_of(topo: &Topology) -> Vec<u16> {
    let order = HolmesScheduler::cluster_order(topo);
    let mut rank_of = vec![0u16; order.len()];
    for (pos, c) in order.iter().enumerate() {
        rank_of[c.0 as usize] = pos as u16;
    }
    rank_of
}

/// Search statistics of one guided synthesis run.
///
/// Every count is deterministic: expansion order is fixed by the
/// `(bound, canonical prefix, seq)` heap key and nothing in the search
/// consults randomness, thread timing, or the wall clock — the
/// determinism tests pin these counts per topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthStats {
    /// Partial plans popped from the frontier and expanded.
    pub expanded: u64,
    /// Successor states pushed onto the frontier.
    pub pushed: u64,
    /// Successors discarded because their admissible bound already met or
    /// exceeded the heuristic incumbent's cost.
    pub pruned_bound: u64,
    /// Successors discarded by mask dominance: an already-pushed state
    /// over the same cluster set was at least as cheap and canonically
    /// smaller.
    pub pruned_dominated: u64,
    /// Successors never generated because a structurally identical
    /// cluster with a smaller canonical rank was expanded instead.
    pub pruned_symmetry: u64,
    /// True when no explored order strictly beat the heuristic incumbent,
    /// i.e. the fastest-first order is itself the canonical winner.
    pub heuristic_won: bool,
}

impl SynthStats {
    /// Total successors discarded across all three pruning rules.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_bound + self.pruned_dominated + self.pruned_symmetry
    }
}

/// One data-parallel group's logical members, ordered by the member that
/// determines it last (its maximum logical rank): the synthesis prices
/// group `det` the moment the order prefix covers rank `max_member`.
struct GroupSpec {
    index: u32,
    members: Vec<u32>,
    max_member: u32,
}

fn group_specs(layout: &GroupLayout) -> Vec<GroupSpec> {
    let mut specs: Vec<GroupSpec> = (0..layout.dp_group_count())
        .map(|i| {
            let members = layout.dp_group(i);
            let max_member = members.iter().copied().max().unwrap_or(0);
            GroupSpec {
                index: i,
                members,
                max_member,
            }
        })
        .collect();
    specs.sort_by_key(|s| (s.max_member, s.index));
    specs
}

/// `clean[n]` is true when no DP group has members on both sides of
/// logical boundary `n` — the precondition for mask dominance: with no
/// straddling group, two prefixes over the same cluster set split the
/// plan's groups identically into "already priced" and "priced by any
/// common completion", so their futures share every cost term.
fn clean_boundaries(layout: &GroupLayout, specs: &[GroupSpec], n_total: usize) -> Vec<bool> {
    let mut straddled = vec![0i32; n_total + 2];
    for spec in specs {
        let min = spec.members.iter().copied().min().unwrap_or(0) as usize;
        let max = spec.max_member as usize;
        // Boundaries in (min, max] split this group.
        straddled[min + 1] += 1;
        straddled[max + 1] -= 1;
    }
    debug_assert_eq!(layout.degrees().devices(), n_total as u32);
    let mut clean = vec![true; n_total + 1];
    let mut depth = 0i32;
    for (n, flag) in clean.iter_mut().enumerate() {
        depth += straddled[n];
        *flag = depth == 0;
    }
    clean
}

/// Exact per-cluster future group costs, available only when every
/// cluster's device count is a multiple of the stage block `t·d`. Then
/// every cluster occupies whole stage blocks wherever the order places
/// it, each of its groups' devices sit at fixed in-block offsets
/// (`m + j·t`, position-independent), and the max of those group costs is
/// a *floor* the cluster contributes to any completion — admissible, and
/// exact once the cluster is visited.
/// The skew term is included too: a group's straggler tax depends only on
/// its device *set*, which at aligned offsets is position-independent, so
/// the workload-priced floor stays admissible and exact.
fn aligned_solo_costs(
    topo: &Topology,
    layout: &GroupLayout,
    workload: PlacementWorkload,
) -> Option<Vec<f64>> {
    let degrees = layout.degrees();
    let (t, d) = (degrees.tensor as usize, degrees.data as usize);
    let block = t * d;
    if block == 0 {
        return None;
    }
    let aligned = topo
        .clusters()
        .iter()
        .all(|c| (c.gpu_count() as usize).is_multiple_of(block));
    if !aligned {
        return None;
    }
    let mut solo = Vec::with_capacity(topo.cluster_count() as usize);
    for ci in 0..topo.cluster_count() {
        let ranks = topo.cluster_ranks(ClusterId(ci));
        let mut worst = 0.0f64;
        for base in (0..ranks.len()).step_by(block) {
            for m in 0..t {
                let devices: Vec<Rank> = (0..d).map(|j| ranks[base + m + j * t]).collect();
                // The group index is metadata only — cost depends on the
                // device set, never on the index.
                let cost = DpGroupNic::analyze_group(topo, 0, devices)
                    .workload_cost_seconds(topo, workload);
                worst = worst.max(cost);
            }
        }
        solo.push(worst);
    }
    Some(solo)
}

/// Structurally identical clusters (same nodes, switch, oversubscription)
/// are interchangeable: swapping them in any order permutes identical
/// profile numbers, so every group cost — and therefore the plan cost —
/// is bit-identical. Names are labels, not structure.
fn clusters_interchangeable(a: &Cluster, b: &Cluster) -> bool {
    a.nodes == b.nodes
        && a.has_switch == b.has_switch
        && a.oversubscription.total_cmp(&b.oversubscription).is_eq()
}

/// A partial plan on the open list.
struct PartialPlan {
    /// Admissible lower bound on any completion's cost.
    bound: f64,
    /// Speed-rank-relabeled prefix: the canonical tie-break key.
    canon: Vec<u16>,
    /// Insertion sequence number (final, total tie-break).
    seq: u64,
    /// Clusters visited so far, in visit order.
    prefix: Vec<ClusterId>,
    /// Bitmask of visited clusters (`M ≤ 128`).
    used: u128,
    /// Devices pinned to logical ranks `0..devices.len()`.
    devices: Vec<Rank>,
    /// Max-fold of the exact sync costs of fully determined DP groups.
    g: f64,
    /// Groups (in [`group_specs`] order) already priced into `g`.
    det: usize,
}

impl PartialEq for PartialPlan {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other).is_eq()
    }
}
impl Eq for PartialPlan {}
impl PartialOrd for PartialPlan {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PartialPlan {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| self.canon.cmp(&other.canon))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

fn result_for(
    topo: &Topology,
    cluster_order: Vec<ClusterId>,
    cost_seconds: f64,
    evaluated: u64,
) -> PlacementSearchResult {
    let assignment = assignment_for_order(topo, &cluster_order);
    PlacementSearchResult {
        cluster_order,
        assignment,
        cost_seconds,
        evaluated,
    }
}

/// Synthesize a placement by guided branch-and-bound.
///
/// Returns the canonical winner — the same order, assignment, and
/// bit-equal cost [`crate::search_cluster_orders`] would find by
/// enumerating all `M!` orders — plus the search statistics.
///
/// Topologies beyond 128 clusters exceed the visited-set mask; the
/// heuristic order is returned unchanged (a valid plan, not certified
/// optimal) with `heuristic_won` set.
pub fn synthesize_placement(
    topo: &Topology,
    layout: &GroupLayout,
    gradient_bytes: u64,
) -> (PlacementSearchResult, SynthStats) {
    synthesize_placement_workload(
        topo,
        layout,
        PlacementWorkload::gradient_only(gradient_bytes),
    )
}

/// [`synthesize_placement`] priced against a two-axis
/// [`PlacementWorkload`]: the incremental group fold and the alignment
/// floor both charge each DP group its gradient-sync cost *plus* its
/// compute-straggler skew at the workload's stage FLOPs. The skew term is
/// non-negative and a function of the group's device set alone, so the
/// bound stays admissible and exact at completion; with
/// [`PlacementWorkload::gradient_only`] every cost, pruning decision, and
/// statistic is bit-identical to [`synthesize_placement`].
pub fn synthesize_placement_workload(
    topo: &Topology,
    layout: &GroupLayout,
    workload: PlacementWorkload,
) -> (PlacementSearchResult, SynthStats) {
    let m = topo.cluster_count() as usize;
    let heuristic_order = HolmesScheduler::cluster_order(topo);
    let heuristic_cost = cost_of_order_workload(topo, layout, &heuristic_order, workload);
    let mut stats = SynthStats::default();
    let mut evaluated: u64 = 1; // the heuristic incumbent

    if m <= 1 || m > 128 {
        stats.heuristic_won = true;
        return (
            result_for(topo, heuristic_order, heuristic_cost, evaluated),
            stats,
        );
    }

    let rank_of = speed_rank_of(topo);
    let cluster_ranks: Vec<Vec<Rank>> = (0..m)
        .map(|c| topo.cluster_ranks(ClusterId(c as u32)))
        .collect();
    let specs = group_specs(layout);
    let clean = clean_boundaries(layout, &specs, topo.device_count() as usize);
    let solo = aligned_solo_costs(topo, layout, workload);
    let h_of = |used: u128| -> f64 {
        match &solo {
            Some(costs) => costs
                .iter()
                .enumerate()
                .filter(|&(c, _)| used & (1u128 << c) == 0)
                .fold(0.0f64, |worst, (_, &cost)| worst.max(cost)),
            None => 0.0,
        }
    };

    // class_of[c] = smallest cluster index structurally identical to c.
    let clusters = topo.clusters();
    let mut class_of: Vec<usize> = (0..m).collect();
    for i in 0..m {
        if let Some(j) = (0..i)
            .filter(|&j| class_of[j] == j)
            .find(|&j| clusters_interchangeable(&clusters[i], &clusters[j]))
        {
            class_of[i] = j;
        }
    }

    let mut heap: BinaryHeap<Reverse<PartialPlan>> = BinaryHeap::new();
    // Per-mask dominance frontiers: the Pareto set over (g, canon). An
    // entry dominates a candidate with the same mask when it is at least
    // as cheap *and* canonically smaller — then every completion of the
    // candidate is matched by a no-worse, canonically smaller one.
    let mut frontier: BTreeMap<u128, Vec<(f64, Vec<u16>)>> = BTreeMap::new();
    let mut seq: u64 = 0;

    let root_bound = h_of(0);
    if root_bound.total_cmp(&heuristic_cost).is_lt() {
        heap.push(Reverse(PartialPlan {
            bound: root_bound,
            canon: Vec::new(),
            seq,
            prefix: Vec::new(),
            used: 0,
            devices: Vec::new(),
            g: 0.0,
            det: 0,
        }));
        stats.pushed += 1;
    } else {
        stats.pruned_bound += 1;
    }

    let mut winner: Option<PartialPlan> = None;
    while let Some(Reverse(state)) = heap.pop() {
        debug_assert!(state.bound.total_cmp(&heuristic_cost).is_lt());
        if state.prefix.len() == m {
            // First complete pop = minimal (cost, canonical order): keys
            // strictly increase along paths, so no cheaper or canonically
            // smaller completion can still be hiding behind an open node.
            evaluated += 1;
            winner = Some(state);
            break;
        }
        stats.expanded += 1;
        let mut seen_classes: u128 = 0;
        for c in 0..m {
            if state.used & (1u128 << c) != 0 {
                continue;
            }
            let class = class_of[c];
            if seen_classes & (1u128 << class) != 0 {
                stats.pruned_symmetry += 1;
                continue;
            }
            seen_classes |= 1u128 << class;

            let mut devices = state.devices.clone();
            devices.extend_from_slice(&cluster_ranks[c]);
            let n_new = devices.len();
            let mut g = state.g;
            let mut det = state.det;
            while det < specs.len() && (specs[det].max_member as usize) < n_new {
                let spec = &specs[det];
                let members: Vec<Rank> =
                    spec.members.iter().map(|&l| devices[l as usize]).collect();
                g = g.max(
                    DpGroupNic::analyze_group(topo, spec.index, members)
                        .workload_cost_seconds(topo, workload),
                );
                det += 1;
            }
            let used = state.used | (1u128 << c);
            let bound = g.max(h_of(used));
            if bound.total_cmp(&heuristic_cost).is_ge() {
                stats.pruned_bound += 1;
                continue;
            }
            let mut canon = state.canon.clone();
            canon.push(rank_of[c]);
            if clean[n_new] {
                let entries = frontier.entry(used).or_default();
                if entries
                    .iter()
                    .any(|(g2, c2)| g2.total_cmp(&g).is_le() && *c2 < canon)
                {
                    stats.pruned_dominated += 1;
                    continue;
                }
                entries.retain(|(g2, c2)| !(g.total_cmp(g2).is_le() && canon < *c2));
                entries.push((g, canon.clone()));
            }
            let mut prefix = state.prefix.clone();
            prefix.push(ClusterId(c as u32));
            seq += 1;
            stats.pushed += 1;
            heap.push(Reverse(PartialPlan {
                bound,
                canon,
                seq,
                prefix,
                used,
                devices,
                g,
                det,
            }));
        }
    }

    match winner {
        Some(goal) => (result_for(topo, goal.prefix, goal.g, evaluated), stats),
        None => {
            stats.heuristic_won = true;
            (
                result_for(topo, heuristic_order, heuristic_cost, evaluated),
                stats,
            )
        }
    }
}

/// A placement-planning strategy: topology + layout + per-rank gradient
/// volume → a complete cluster order, device assignment, and analytic
/// cost. The three strategies — heuristic, exhaustive, guided — share the
/// scoring path ([`crate::NicSelectionReport::dp_sync_cost_seconds`]) and
/// the canonical tie-break, so they agree bit-for-bit wherever their
/// coverage overlaps; they differ only in how much of the order space
/// they certify.
pub trait Planner {
    /// Produce a placement for `layout` on `topo`, scoring data-parallel
    /// sync at `gradient_bytes` per rank.
    fn plan_placement(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        gradient_bytes: u64,
    ) -> PlacementSearchResult;

    /// Produce a placement priced against a two-axis
    /// [`PlacementWorkload`] — gradient sync plus compute-straggler skew.
    /// The default ignores the compute axis (exactly the historical
    /// behavior); each shipped planner overrides it to thread the
    /// workload through its own scoring path.
    fn plan_workload(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        workload: PlacementWorkload,
    ) -> PlacementSearchResult {
        self.plan_placement(topo, layout, workload.gradient_bytes)
    }

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// The fastest-first heuristic as a [`Planner`]: no search, one candidate
/// — [`HolmesScheduler::cluster_order`] scored by the shared cost path.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicPlanner;

impl Planner for HeuristicPlanner {
    fn plan_placement(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        gradient_bytes: u64,
    ) -> PlacementSearchResult {
        self.plan_workload(
            topo,
            layout,
            PlacementWorkload::gradient_only(gradient_bytes),
        )
    }

    fn plan_workload(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        workload: PlacementWorkload,
    ) -> PlacementSearchResult {
        let order = HolmesScheduler::cluster_order(topo);
        let cost = cost_of_order_workload(topo, layout, &order, workload);
        result_for(topo, order, cost, 1)
    }

    fn name(&self) -> &'static str {
        "heuristic"
    }
}

/// Exhaustive enumeration as a [`Planner`] — the reference oracle. Scores
/// all `M!` orders via [`crate::search_cluster_orders_with_mode`]; only
/// usable at small `M`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustivePlanner {
    /// Candidate evaluation mode (parallel by default).
    pub mode: EvalMode,
}

impl Planner for ExhaustivePlanner {
    fn plan_placement(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        gradient_bytes: u64,
    ) -> PlacementSearchResult {
        self.plan_workload(
            topo,
            layout,
            PlacementWorkload::gradient_only(gradient_bytes),
        )
    }

    fn plan_workload(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        workload: PlacementWorkload,
    ) -> PlacementSearchResult {
        search_cluster_orders_workload_with_mode(topo, layout, workload, self.mode)
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

/// Guided branch-and-bound synthesis as a [`Planner`] — the production
/// path: returns the exhaustive oracle's exact winner without enumerating
/// `M!` orders, and scales to fleets where enumeration cannot go.
#[derive(Debug, Clone, Copy, Default)]
pub struct GuidedPlanner;

impl GuidedPlanner {
    /// [`Planner::plan_placement`] plus the search statistics
    /// (expanded/pruned node counts — deterministic per topology).
    pub fn plan_with_stats(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        gradient_bytes: u64,
    ) -> (PlacementSearchResult, SynthStats) {
        synthesize_placement(topo, layout, gradient_bytes)
    }

    /// [`Planner::plan_workload`] plus the search statistics.
    pub fn plan_workload_with_stats(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        workload: PlacementWorkload,
    ) -> (PlacementSearchResult, SynthStats) {
        synthesize_placement_workload(topo, layout, workload)
    }
}

impl Planner for GuidedPlanner {
    fn plan_placement(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        gradient_bytes: u64,
    ) -> PlacementSearchResult {
        synthesize_placement(topo, layout, gradient_bytes).0
    }

    fn plan_workload(
        &self,
        topo: &Topology,
        layout: &GroupLayout,
        workload: PlacementWorkload,
    ) -> PlacementSearchResult {
        synthesize_placement_workload(topo, layout, workload).0
    }

    fn name(&self) -> &'static str {
        "guided"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::ParallelDegrees;
    use crate::nic_selection::NicSelectionReport;
    use crate::scheduler::Scheduler;
    use crate::search::{cost_of_order, search_cluster_orders_with_mode};
    use holmes_topology::{presets, NicType};

    const GRAD: u64 = 1 << 32; // 4 GiB, PG-scale

    fn layout_for(topo: &Topology, t: u32, p: u32) -> GroupLayout {
        GroupLayout::new(ParallelDegrees::infer_data(t, p, topo.device_count()).unwrap())
    }

    fn assert_matches_exhaustive(topo: &Topology, t: u32, p: u32) {
        let layout = layout_for(topo, t, p);
        let exhaustive = search_cluster_orders_with_mode(topo, &layout, GRAD, EvalMode::Serial);
        let (guided, _) = synthesize_placement(topo, &layout, GRAD);
        assert_eq!(
            guided.cluster_order, exhaustive.cluster_order,
            "t={t} p={p}"
        );
        assert_eq!(
            guided.cost_seconds.to_bits(),
            exhaustive.cost_seconds.to_bits(),
            "t={t} p={p}: guided {} vs exhaustive {}",
            guided.cost_seconds,
            exhaustive.cost_seconds
        );
        assert_eq!(guided.assignment, exhaustive.assignment);
    }

    #[test]
    fn guided_matches_exhaustive_on_every_preset() {
        for (topo, ps) in [
            (presets::hybrid_two_cluster(2), vec![1u32, 2]),
            (presets::hybrid_split(3, 1), vec![1, 2, 4]),
            (
                presets::same_nic_two_clusters(NicType::InfiniBand, 2),
                vec![1, 2],
            ),
            (presets::table4_2r_2r_2ib(), vec![1, 2, 3]),
            (presets::table4_2r_2ib_2ib(), vec![1, 2, 3]),
            (presets::table4_4r_4ib_4ib(), vec![2, 3]),
        ] {
            for p in ps {
                assert_matches_exhaustive(&topo, 1, p);
            }
        }
        // Non-trivial tensor degree too.
        assert_matches_exhaustive(&presets::table4_2r_2ib_2ib(), 2, 3);
        assert_matches_exhaustive(&presets::hybrid_two_cluster(2), 4, 2);
    }

    #[test]
    fn guided_breaks_ties_toward_the_heuristic_order() {
        // Aligned three-cluster preset: every order costs the same, so the
        // guided planner must return the fastest-first canonical order.
        let topo = presets::table4_2r_2ib_2ib();
        let layout = layout_for(&topo, 1, 3);
        let (result, stats) = synthesize_placement(&topo, &layout, GRAD);
        assert_eq!(result.cluster_order, HolmesScheduler::cluster_order(&topo));
        assert!(stats.heuristic_won);
    }

    #[test]
    fn guided_beats_heuristic_when_heuristic_is_suboptimal() {
        // If the guided planner reports a strict win, its cost must be
        // strictly below the heuristic's and must verify against a direct
        // re-score of the returned order.
        let topo = presets::table4_2r_2ib_2ib();
        let layout = layout_for(&topo, 1, 2); // unaligned: stages span clusters
        let (result, _) = synthesize_placement(&topo, &layout, GRAD);
        let rescored = cost_of_order(&topo, &layout, &result.cluster_order, GRAD);
        assert_eq!(result.cost_seconds.to_bits(), rescored.to_bits());
        let heuristic = HolmesScheduler::cluster_order(&topo);
        let heuristic_cost = cost_of_order(&topo, &layout, &heuristic, GRAD);
        assert!(result.cost_seconds.total_cmp(&heuristic_cost).is_le());
    }

    #[test]
    fn synthesis_statistics_are_deterministic() {
        let topo = presets::table4_4r_4ib_4ib();
        let layout = layout_for(&topo, 1, 2);
        let (r1, s1) = synthesize_placement(&topo, &layout, GRAD);
        let (r2, s2) = synthesize_placement(&topo, &layout, GRAD);
        assert_eq!(s1, s2);
        assert_eq!(r1.cluster_order, r2.cluster_order);
        assert_eq!(r1.cost_seconds.to_bits(), r2.cost_seconds.to_bits());
    }

    #[test]
    fn planner_strategies_agree_on_small_topologies() {
        let topo = presets::table4_2r_2r_2ib();
        let layout = layout_for(&topo, 1, 3);
        let strategies: [&dyn Planner; 3] = [
            &HeuristicPlanner,
            &ExhaustivePlanner::default(),
            &GuidedPlanner,
        ];
        let results: Vec<PlacementSearchResult> = strategies
            .iter()
            .map(|s| s.plan_placement(&topo, &layout, GRAD))
            .collect();
        // All three agree here because the heuristic is optimal on the
        // aligned paper presets; the guided/exhaustive pair must agree
        // everywhere.
        for r in &results[1..] {
            assert_eq!(r.cluster_order, results[0].cluster_order);
            assert_eq!(r.cost_seconds.to_bits(), results[0].cost_seconds.to_bits());
        }
        assert_eq!(
            strategies.map(|s| s.name()),
            ["heuristic", "exhaustive", "guided"]
        );
    }

    #[test]
    fn single_cluster_synthesis_is_trivial() {
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let layout = layout_for(&topo, 1, 2);
        let (result, stats) = synthesize_placement(&topo, &layout, GRAD);
        assert_eq!(result.cluster_order, vec![ClusterId(0)]);
        assert_eq!(stats.expanded, 0);
        assert!(stats.heuristic_won);
    }

    #[test]
    fn gradient_only_workload_is_bit_identical_to_legacy_synthesis() {
        for (topo, p) in [
            (presets::hybrid_two_cluster(2), 2u32),
            (presets::table4_2r_2ib_2ib(), 2),
            (presets::gen_mix_3c(), 3),
        ] {
            let layout = layout_for(&topo, 1, p);
            let (legacy, legacy_stats) = synthesize_placement(&topo, &layout, GRAD);
            let (workload, workload_stats) = synthesize_placement_workload(
                &topo,
                &layout,
                PlacementWorkload::gradient_only(GRAD),
            );
            assert_eq!(legacy.cluster_order, workload.cluster_order);
            assert_eq!(
                legacy.cost_seconds.to_bits(),
                workload.cost_seconds.to_bits()
            );
            assert_eq!(legacy_stats, workload_stats);
        }
    }

    #[test]
    fn guided_matches_exhaustive_under_compute_skew() {
        // The bound must stay admissible when every group cost carries a
        // straggler-skew term: the guided winner must still be the
        // exhaustive oracle's exact winner on mixed-generation fleets.
        let workload = PlacementWorkload::new(GRAD, 2.5e13);
        for (topo, ps) in [
            (presets::gen_mix_3c(), vec![1u32, 2, 3]),
            (presets::gen_split_2c(), vec![1, 2]),
            (presets::table4_2r_2ib_2ib(), vec![2, 3]),
        ] {
            for p in ps {
                let layout = layout_for(&topo, 1, p);
                let exhaustive = search_cluster_orders_workload_with_mode(
                    &topo,
                    &layout,
                    workload,
                    EvalMode::Serial,
                );
                let (guided, _) = synthesize_placement_workload(&topo, &layout, workload);
                assert_eq!(guided.cluster_order, exhaustive.cluster_order, "p={p}");
                assert_eq!(
                    guided.cost_seconds.to_bits(),
                    exhaustive.cost_seconds.to_bits(),
                    "p={p}: guided {} vs exhaustive {}",
                    guided.cost_seconds,
                    exhaustive.cost_seconds
                );
            }
        }
    }

    #[test]
    fn skew_pricing_prefers_generation_pure_dp_groups() {
        // Two NIC-identical clusters of different generations: gradient-only
        // pricing sees a tie, but once stage FLOPs enter, any order whose
        // DP groups straddle generations pays the straggler tax. The
        // aligned p=2 layout keeps each group inside one cluster, so its
        // workload cost must stay equal to its sync-only cost.
        let topo = presets::gen_split_2c();
        let layout = layout_for(&topo, 1, 2);
        let workload = PlacementWorkload::new(GRAD, 2.5e13);
        let priced = synthesize_placement_workload(&topo, &layout, workload).0;
        let sync_only = synthesize_placement(&topo, &layout, GRAD).0;
        assert_eq!(
            priced.cost_seconds.to_bits(),
            sync_only.cost_seconds.to_bits(),
            "generation-pure groups must pay zero skew"
        );
        // An unaligned layout (p=1: one stage spans both generations)
        // must price a strictly positive skew term.
        let unaligned = layout_for(&topo, 1, 1);
        let priced = synthesize_placement_workload(&topo, &unaligned, workload).0;
        let sync_only = synthesize_placement(&topo, &unaligned, GRAD).0;
        assert!(
            priced.cost_seconds > sync_only.cost_seconds,
            "generation-straddling groups must pay the straggler tax: {} vs {}",
            priced.cost_seconds,
            sync_only.cost_seconds
        );
    }

    #[test]
    fn speed_rank_is_the_inverse_of_cluster_order() {
        let topo = presets::table4_2r_2ib_2ib();
        let order = HolmesScheduler::cluster_order(&topo);
        let rank = speed_rank_of(&topo);
        for (pos, c) in order.iter().enumerate() {
            assert_eq!(rank[c.0 as usize] as usize, pos);
        }
    }

    #[test]
    fn symmetry_pruning_collapses_identical_clusters() {
        // 4 identical clusters, aligned: the alignment floor makes every
        // bound equal the (tied) optimum, so the incumbent survives and
        // the search terminates immediately on the root bound.
        let topo = presets::three_cluster([
            (2, NicType::InfiniBand),
            (2, NicType::InfiniBand),
            (2, NicType::InfiniBand),
        ]);
        let layout = layout_for(&topo, 1, 3);
        let (result, stats) = synthesize_placement(&topo, &layout, GRAD);
        assert!(stats.heuristic_won);
        assert_eq!(result.cluster_order, HolmesScheduler::cluster_order(&topo));
        assert_eq!(stats.expanded, 0, "{stats:?}");
        // And the exhaustive oracle agrees on the winner.
        let exhaustive = search_cluster_orders_with_mode(&topo, &layout, GRAD, EvalMode::Serial);
        assert_eq!(result.cluster_order, exhaustive.cluster_order);
        assert_eq!(
            result.cost_seconds.to_bits(),
            exhaustive.cost_seconds.to_bits()
        );
    }

    #[test]
    fn dp_group_cost_fold_is_order_independent() {
        // The bound's exactness at completion rests on max-folds over the
        // same group costs agreeing regardless of fold order.
        let topo = presets::table4_2r_2ib_2ib();
        let layout = layout_for(&topo, 1, 2);
        let order = HolmesScheduler::cluster_order(&topo);
        let assignment = assignment_for_order(&topo, &order);
        let report = NicSelectionReport::analyze(&topo, &layout, &assignment);
        let forward = report
            .groups
            .iter()
            .fold(0.0f64, |w, g| w.max(g.sync_cost_seconds(&topo, GRAD)));
        let reverse = report
            .groups
            .iter()
            .rev()
            .fold(0.0f64, |w, g| w.max(g.sync_cost_seconds(&topo, GRAD)));
        assert_eq!(forward.to_bits(), reverse.to_bits());
        assert_eq!(
            forward.to_bits(),
            report.dp_sync_cost_seconds(&topo, GRAD).to_bits()
        );
        let _ = HolmesScheduler.assign(&topo, &layout);
    }
}
