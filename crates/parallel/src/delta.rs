//! Typed topology deltas and migration-aware re-planning.
//!
//! PR 3's [`NicSelectionReport::replan_on_nic_loss`] handled exactly one
//! churn class — a node losing its RDMA NIC — by downgrading the touched
//! groups in place. Elastic training needs more: nodes *leave* (preempted
//! spot instances, announced drains) and *join* (scale-up mid-run), and
//! each of those changes the device count, so the plan must be rebuilt,
//! not patched. This module supplies the vocabulary and the full path:
//!
//! * [`TopologyDelta`] — a typed batch of membership events
//!   ([`DeltaEvent`]: NIC loss, node loss, node join);
//! * [`TopologyDelta::apply`] — the post-churn [`Topology`] (losses
//!   removed, joins appended, lost NICs demoted to their Ethernet
//!   fallback);
//! * [`replan_for_delta`] — a migration-aware re-plan: the post-churn
//!   placement comes from any [`Planner`] (the guided branch-and-bound
//!   planner in production), and the optimizer-state migration the
//!   re-shard implies is priced by *simulating* the state transfers on
//!   the post-churn fabric, falling back to a checkpoint restore for
//!   shards with no surviving replica.
//!
//! `replan_on_nic_loss` survives as a thin wrapper over the downgrade
//! class ([`NicSelectionReport::replan`] with a NIC-loss-only delta), so
//! its behaviour — and PR 3's tests — are unchanged bit-for-bit.

use std::collections::HashSet;

use holmes_netsim::{Fabric, FlowSpec, NetSim};
use holmes_topology::{Cluster, Node, Rank, Topology, TopologyError};

use crate::degrees::{DegreeError, ParallelDegrees};
use crate::groups::GroupLayout;
use crate::nic_selection::NicSelectionReport;
use crate::plan::ParallelPlan;
use crate::search::PlacementSearchResult;
use crate::skew::PlacementWorkload;
use crate::synth::Planner;

/// One node-level membership event, expressed against the *pre-churn*
/// topology's global node indices (cluster-major, `rank / gpus_per_node`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaEvent {
    /// The node stays in the job but its RDMA NIC is gone: it can only
    /// reach peers over the Ethernet fallback (paper §3.2).
    NicLoss {
        /// Global node index.
        node: u32,
    },
    /// The node leaves the job (preemption or drain): its devices and
    /// links disappear from the topology.
    NodeLoss {
        /// Global node index.
        node: u32,
    },
    /// A node joins `cluster`, cloning the hardware profile of that
    /// cluster's first (pre-churn) node. Joins are appended at the end
    /// of the cluster after losses are applied.
    NodeJoin {
        /// Cluster index the new node lands in.
        cluster: u32,
    },
}

/// A typed batch of membership events applied atomically: all losses
/// first, then all joins, regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopologyDelta {
    events: Vec<DeltaEvent>,
}

/// Error applying a [`TopologyDelta`] or re-planning under one.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// An event named a node index outside the topology.
    UnknownNode(u32),
    /// A join named a cluster index outside the topology.
    UnknownCluster(u32),
    /// The delta would leave a cluster with no nodes.
    EmptyCluster(u32),
    /// The post-churn device count cannot host the plan's fixed tensor ×
    /// pipeline degrees.
    Degrees(DegreeError),
    /// The post-churn topology is structurally invalid.
    Topology(TopologyError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownNode(n) => write!(f, "delta names unknown node {n}"),
            DeltaError::UnknownCluster(c) => write!(f, "delta names unknown cluster {c}"),
            DeltaError::EmptyCluster(c) => {
                write!(f, "delta would leave cluster {c} without nodes")
            }
            DeltaError::Degrees(e) => write!(f, "post-churn degrees infeasible: {e:?}"),
            DeltaError::Topology(e) => write!(f, "post-churn topology invalid: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl TopologyDelta {
    /// An empty delta (applying it is the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// A delta of pure NIC losses — the PR 3 downgrade class.
    pub fn nic_losses(nodes: &[u32]) -> Self {
        let mut d = Self::new();
        for &n in nodes {
            d.nic_loss(n);
        }
        d
    }

    /// Record a NIC loss on `node`.
    pub fn nic_loss(&mut self, node: u32) -> &mut Self {
        self.events.push(DeltaEvent::NicLoss { node });
        self
    }

    /// Record `node` leaving the job.
    pub fn node_loss(&mut self, node: u32) -> &mut Self {
        self.events.push(DeltaEvent::NodeLoss { node });
        self
    }

    /// Record a node joining `cluster`.
    pub fn node_join(&mut self, cluster: u32) -> &mut Self {
        self.events.push(DeltaEvent::NodeJoin { cluster });
        self
    }

    /// The recorded events, in insertion order.
    pub fn events(&self) -> &[DeltaEvent] {
        &self.events
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Nodes affected by a *downgrade* (NIC loss) or a *loss* — the set
    /// the in-place replan treats as RDMA-incapable. Sorted, deduplicated.
    pub fn affected_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                DeltaEvent::NicLoss { node } | DeltaEvent::NodeLoss { node } => Some(*node),
                DeltaEvent::NodeJoin { .. } => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Nodes leaving the job. Sorted, deduplicated.
    pub fn lost_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                DeltaEvent::NodeLoss { node } => Some(*node),
                _ => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Build the post-churn topology: lost NICs are demoted to the node's
    /// Ethernet fallback profile, lost nodes are removed, and joins append
    /// a clone of the target cluster's first pre-churn node.
    pub fn apply(&self, topo: &Topology) -> Result<Topology, DeltaError> {
        let mut clusters: Vec<Cluster> = topo.clusters().to_vec();
        let node_count = topo.node_count();

        // Resolve a global node index into (cluster, position-in-cluster).
        let locate = |node: u32| -> Result<(usize, usize), DeltaError> {
            if node >= node_count {
                return Err(DeltaError::UnknownNode(node));
            }
            let mut base = 0u32;
            for (c, cluster) in topo.clusters().iter().enumerate() {
                let len = cluster.nodes.len() as u32;
                if node < base + len {
                    return Ok((c, (node - base) as usize));
                }
                base += len;
            }
            Err(DeltaError::UnknownNode(node))
        };

        // NIC losses first: they only touch profiles, never indices.
        for e in &self.events {
            if let DeltaEvent::NicLoss { node } = e {
                let (c, p) = locate(*node)?;
                let eth = clusters[c].nodes[p].ethernet;
                clusters[c].nodes[p].nic = eth;
            }
        }
        // Losses: collect positions per cluster and remove highest-first
        // so earlier removals never shift later ones.
        let mut removals: Vec<(usize, usize)> = Vec::new();
        for node in self.lost_nodes() {
            removals.push(locate(node)?);
        }
        removals.sort_unstable_by(|a, b| b.cmp(a));
        for (c, p) in removals {
            clusters[c].nodes.remove(p);
        }
        // Joins: clone the pre-churn cluster's first node profile.
        for e in &self.events {
            if let DeltaEvent::NodeJoin { cluster } = e {
                let c = *cluster as usize;
                let template: Node = topo
                    .clusters()
                    .get(c)
                    .and_then(|cl| cl.nodes.first())
                    .cloned()
                    .ok_or(DeltaError::UnknownCluster(*cluster))?;
                clusters[c].nodes.push(template);
            }
        }
        if let Some(c) = clusters.iter().position(|c| c.nodes.is_empty()) {
            return Err(DeltaError::EmptyCluster(c as u32));
        }
        Topology::new(clusters, *topo.inter_cluster_profile()).map_err(DeltaError::Topology)
    }

    /// Map pre-churn global node indices to post-churn ones: `None` for
    /// lost nodes. Matches [`TopologyDelta::apply`]'s index layout (losses
    /// removed, joins appended at each cluster's end).
    pub fn node_map(&self, topo: &Topology) -> Result<Vec<Option<u32>>, DeltaError> {
        let node_count = topo.node_count();
        let lost_list = self.lost_nodes();
        // Validate in declaration order (not hash order) so the reported
        // node is stable across runs.
        for &n in &lost_list {
            if n >= node_count {
                return Err(DeltaError::UnknownNode(n));
            }
        }
        let lost: HashSet<u32> = lost_list.into_iter().collect();
        let mut joins_per_cluster = vec![0u32; topo.clusters().len()];
        for e in &self.events {
            if let DeltaEvent::NodeJoin { cluster } = e {
                let c = *cluster as usize;
                if c >= joins_per_cluster.len() {
                    return Err(DeltaError::UnknownCluster(*cluster));
                }
                joins_per_cluster[c] += 1;
            }
        }
        let mut map = Vec::with_capacity(node_count as usize);
        let mut old_idx = 0u32;
        let mut new_idx = 0u32;
        for (c, cluster) in topo.clusters().iter().enumerate() {
            for _ in &cluster.nodes {
                if lost.contains(&old_idx) {
                    map.push(None);
                } else {
                    map.push(Some(new_idx));
                    new_idx += 1;
                }
                old_idx += 1;
            }
            new_idx += joins_per_cluster[c];
        }
        Ok(map)
    }
}

/// What moving optimizer state costs, per migrating rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCosts {
    /// Optimizer-state bytes each re-sharded rank must receive (the
    /// fp32 master weights + moments shard, typically `≈ 12 ×
    /// parameters / (t·p·shards)`).
    pub state_bytes_per_rank: u64,
    /// Wall-clock of restoring a shard from the checkpoint store, paid
    /// once (restores stream in parallel) whenever any shard has no
    /// surviving replica to copy from.
    pub checkpoint_restore_seconds: f64,
}

impl MigrationCosts {
    /// Costs with an explicit per-rank state volume and restore time.
    pub fn new(state_bytes_per_rank: u64, checkpoint_restore_seconds: f64) -> Self {
        MigrationCosts {
            state_bytes_per_rank,
            checkpoint_restore_seconds,
        }
    }
}

/// One optimizer-state transfer of the migration, in *post-churn* rank
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateMove {
    /// Surviving device holding the shard.
    pub from: Rank,
    /// Device that needs it under the new placement.
    pub to: Rank,
    /// Bytes moved.
    pub bytes: u64,
}

/// The state movement a re-shard implies, priced on the post-churn fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// Peer-to-peer shard copies, in deterministic (group, member) order.
    pub moves: Vec<StateMove>,
    /// Data-parallel groups whose shard had no surviving replica and must
    /// come back from the checkpoint store.
    pub restored_groups: Vec<u32>,
    /// Simulated wall-clock of all `moves` launched concurrently on the
    /// post-churn fabric (max-min fair sharing, so incast at a popular
    /// source is priced, not assumed away).
    pub transfer_seconds: f64,
    /// Checkpoint-restore wall-clock (0 when every shard had a live
    /// source).
    pub restore_seconds: f64,
}

impl MigrationPlan {
    /// Total migration stall before the next iteration can start.
    pub fn total_seconds(&self) -> f64 {
        self.transfer_seconds + self.restore_seconds
    }
}

/// Result of [`replan_for_delta`].
#[derive(Debug, Clone)]
pub struct DeltaReplanOutcome {
    /// The post-churn topology the new plan targets.
    pub new_topology: Topology,
    /// The placement the planner chose on it.
    pub placement: PlacementSearchResult,
    /// NIC selection of the new placement.
    pub report: NicSelectionReport,
    /// The state migration getting from the old plan to the new one.
    pub migration: MigrationPlan,
    /// Analytic DP sync cost of the old plan on the old topology.
    pub cost_before_seconds: f64,
    /// Analytic DP sync cost of the new plan on the new topology.
    pub cost_after_seconds: f64,
}

impl DeltaReplanOutcome {
    /// Steady-state DP sync slowdown of the post-churn plan (1.0 =
    /// unchanged; < 1.0 after a scale-up).
    pub fn slowdown(&self) -> f64 {
        if self.cost_before_seconds <= 0.0 {
            return 1.0;
        }
        self.cost_after_seconds / self.cost_before_seconds
    }
}

/// Migration-aware re-plan: apply `delta`, re-run placement through
/// `planner` on the post-churn topology (tensor and pipeline degrees
/// fixed, data degree re-inferred from the surviving device count), and
/// price the optimizer-state migration by simulating the shard copies on
/// the post-churn fabric.
///
/// Shard identity follows the data-parallel group index (`g = stage · t +
/// tp-slot`), which is invariant under the re-shard because `t` and `p`
/// are preserved. Each member of a post-churn DP group sources its shard
/// from the first surviving pre-churn replica of the same group (no copy
/// when the member already holds it); a group with no surviving replica
/// falls back to the checkpoint store.
pub fn replan_for_delta(
    topo: &Topology,
    plan: &ParallelPlan,
    delta: &TopologyDelta,
    gradient_bytes: u64,
    planner: &dyn Planner,
    costs: &MigrationCosts,
) -> Result<DeltaReplanOutcome, DeltaError> {
    replan_for_delta_with(
        topo,
        plan,
        delta,
        PlacementWorkload::gradient_only(gradient_bytes),
        planner,
        costs,
    )
}

/// [`replan_for_delta`] priced against a two-axis
/// [`PlacementWorkload`]: the post-churn placement search and the
/// before/after costs all charge DP groups their compute-straggler skew
/// in addition to gradient sync — so churn on a mixed-generation fleet
/// re-plans away from generation-straddling groups, not just NIC
/// downgrades. With [`PlacementWorkload::gradient_only`] this is
/// bit-identical to [`replan_for_delta`].
pub fn replan_for_delta_with(
    topo: &Topology,
    plan: &ParallelPlan,
    delta: &TopologyDelta,
    workload: PlacementWorkload,
    planner: &dyn Planner,
    costs: &MigrationCosts,
) -> Result<DeltaReplanOutcome, DeltaError> {
    let new_topo = delta.apply(topo)?;
    let degrees = plan.degrees();
    let new_degrees =
        ParallelDegrees::infer_data(degrees.tensor, degrees.pipeline, new_topo.device_count())
            .map_err(DeltaError::Degrees)?;
    let layout = GroupLayout::new(new_degrees);
    let placement = planner.plan_workload(&new_topo, &layout, workload);
    let report = NicSelectionReport::analyze(&new_topo, &layout, &placement.assignment);
    let cost_before_seconds = plan
        .nic_report(topo)
        .dp_workload_cost_seconds(topo, workload);
    let cost_after_seconds = report.dp_workload_cost_seconds(&new_topo, workload);

    // Old physical rank → post-churn physical rank (None when its node
    // left). GPU slot within a node is stable across the re-index.
    let node_map = delta.node_map(topo)?;
    let g_old = topo.gpus_per_node().max(1);
    let g_new = new_topo.gpus_per_node().max(1);
    let surviving = |r: Rank| -> Option<Rank> {
        node_map[(r.0 / g_old) as usize].map(|nn| Rank(nn * g_new + r.0 % g_old))
    };

    let mut moves = Vec::new();
    let mut restored_groups = Vec::new();
    for g in 0..layout.dp_group_count() {
        // Pre-churn replicas of shard `g`, translated into post-churn
        // rank space; group indices line up because t·p is unchanged.
        let sources: Vec<Rank> = plan
            .dp_group_devices(g)
            .into_iter()
            .filter_map(surviving)
            .collect();
        let members = placement.assignment.map_group(&layout.dp_group(g));
        if sources.is_empty() {
            restored_groups.push(g);
            continue;
        }
        for dst in members {
            if sources.contains(&dst) {
                continue; // the shard is already local
            }
            moves.push(StateMove {
                from: sources[0],
                to: dst,
                bytes: costs.state_bytes_per_rank,
            });
        }
    }

    // Price the copies on the *actual* post-churn fabric: all transfers
    // launch at t = 0 and contend under max-min fairness, so a popular
    // source's uplink incast stretches the migration exactly as it would
    // in the real cluster.
    let mut transfer_seconds = 0.0;
    let priced: Vec<&StateMove> = moves
        .iter()
        .filter(|m| m.from != m.to && m.bytes > 0)
        .collect();
    if !priced.is_empty() {
        let mut sim = NetSim::new();
        let fabric = Fabric::build(&new_topo, &mut sim);
        for (i, m) in priced.into_iter().enumerate() {
            let route = fabric.route(&new_topo, m.from, m.to);
            sim.start_flow(FlowSpec {
                path: route.path,
                bytes: m.bytes,
                latency: route.latency,
                rate_cap: route.rate_cap,
                token: i as u64,
            });
        }
        while sim.next().is_some() {}
        transfer_seconds = sim.now().as_secs_f64();
    }
    let restore_seconds = if restored_groups.is_empty() {
        0.0
    } else {
        costs.checkpoint_restore_seconds
    };

    Ok(DeltaReplanOutcome {
        new_topology: new_topo,
        placement,
        report,
        migration: MigrationPlan {
            moves,
            restored_groups,
            transfer_seconds,
            restore_seconds,
        },
        cost_before_seconds,
        cost_after_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{HolmesScheduler, Scheduler};
    use crate::synth::GuidedPlanner;
    use holmes_topology::{presets, NicType};

    const GRAD: u64 = 1 << 30;

    fn plan_on(topo: &Topology, t: u32, p: u32) -> ParallelPlan {
        let layout =
            GroupLayout::new(ParallelDegrees::infer_data(t, p, topo.device_count()).unwrap());
        let a = HolmesScheduler.assign(topo, &layout);
        let per_stage = vec![4u32; p as usize];
        ParallelPlan::new(layout, a, per_stage, true)
    }

    #[test]
    fn empty_delta_applies_to_identical_topology() {
        let topo = presets::hybrid_two_cluster(2);
        let delta = TopologyDelta::new();
        let applied = delta.apply(&topo).unwrap();
        assert_eq!(applied.device_count(), topo.device_count());
        assert_eq!(
            delta.node_map(&topo).unwrap(),
            (0..topo.node_count()).map(Some).collect::<Vec<_>>()
        );
    }

    #[test]
    fn node_loss_removes_devices_and_shifts_node_indices() {
        let topo = presets::hybrid_two_cluster(2);
        let g = topo.gpus_per_node();
        let mut delta = TopologyDelta::new();
        delta.node_loss(1);
        let applied = delta.apply(&topo).unwrap();
        assert_eq!(applied.device_count(), topo.device_count() - g);
        assert_eq!(
            delta.node_map(&topo).unwrap(),
            vec![Some(0), None, Some(1), Some(2)]
        );
    }

    #[test]
    fn node_join_clones_the_cluster_profile() {
        let topo = presets::hybrid_two_cluster(2);
        let mut delta = TopologyDelta::new();
        delta.node_join(0);
        let applied = delta.apply(&topo).unwrap();
        assert_eq!(
            applied.device_count(),
            topo.device_count() + topo.gpus_per_node()
        );
        let joined = applied.clusters()[0].nodes.last().unwrap();
        assert_eq!(
            joined.nic_type(),
            topo.clusters()[0].nodes[0].nic_type(),
            "join clones the cluster's NIC technology"
        );
        // Joins land after the cluster's surviving nodes.
        assert_eq!(
            delta.node_map(&topo).unwrap(),
            vec![Some(0), Some(1), Some(3), Some(4)]
        );
    }

    #[test]
    fn nic_loss_demotes_the_node_to_ethernet() {
        let topo = presets::hybrid_two_cluster(2);
        let mut delta = TopologyDelta::new();
        delta.nic_loss(0);
        let applied = delta.apply(&topo).unwrap();
        assert_eq!(applied.clusters()[0].nodes[0].nic_type(), NicType::Ethernet);
        assert_eq!(applied.device_count(), topo.device_count());
    }

    #[test]
    fn delta_errors_are_typed() {
        let topo = presets::hybrid_two_cluster(2);
        let mut d = TopologyDelta::new();
        d.node_loss(99);
        assert_eq!(d.apply(&topo).unwrap_err(), DeltaError::UnknownNode(99));
        let mut d = TopologyDelta::new();
        d.node_join(7);
        assert_eq!(d.apply(&topo).unwrap_err(), DeltaError::UnknownCluster(7));
        let mut d = TopologyDelta::new();
        d.node_loss(0).node_loss(1);
        assert_eq!(d.apply(&topo).unwrap_err(), DeltaError::EmptyCluster(0));
    }

    #[test]
    fn replan_for_delta_matches_planning_the_new_topology_from_scratch() {
        let topo = presets::hybrid_two_cluster(2);
        let plan = plan_on(&topo, 1, 2);
        let mut delta = TopologyDelta::new();
        delta.node_loss(1);
        let planner = GuidedPlanner;
        let outcome = replan_for_delta(
            &topo,
            &plan,
            &delta,
            GRAD,
            &planner,
            &MigrationCosts::new(1 << 20, 30.0),
        )
        .unwrap();
        // The migration-aware path must converge to the same placement a
        // from-scratch plan of the post-churn topology picks.
        let fresh_topo = delta.apply(&topo).unwrap();
        let fresh_layout =
            GroupLayout::new(ParallelDegrees::infer_data(1, 2, fresh_topo.device_count()).unwrap());
        let fresh = planner.plan_placement(&fresh_topo, &fresh_layout, GRAD);
        assert_eq!(outcome.placement.assignment, fresh.assignment);
        assert_eq!(outcome.placement.cluster_order, fresh.cluster_order);
        assert_eq!(outcome.placement.cost_seconds, fresh.cost_seconds);
    }

    #[test]
    fn migration_moves_are_priced_on_the_simulated_fabric() {
        let topo = presets::hybrid_two_cluster(2);
        let plan = plan_on(&topo, 1, 2);
        let mut delta = TopologyDelta::new();
        delta.node_loss(1);
        let outcome = replan_for_delta(
            &topo,
            &plan,
            &delta,
            GRAD,
            &GuidedPlanner,
            &MigrationCosts::new(1 << 30, 30.0),
        )
        .unwrap();
        // d shrank, so surviving replicas re-shard: some state moves, and
        // the simulated transfer takes real (positive) wall-clock.
        assert!(!outcome.migration.moves.is_empty());
        assert!(outcome.migration.transfer_seconds > 0.0);
        // Every shard had a surviving replica: no checkpoint restore.
        assert!(outcome.migration.restored_groups.is_empty());
        assert_eq!(outcome.migration.restore_seconds, 0.0);
        assert_eq!(
            outcome.migration.total_seconds(),
            outcome.migration.transfer_seconds
        );
        // Doubling the state volume cannot make the migration faster.
        let bigger = replan_for_delta(
            &topo,
            &plan,
            &delta,
            GRAD,
            &GuidedPlanner,
            &MigrationCosts::new(1 << 31, 30.0),
        )
        .unwrap();
        assert!(bigger.migration.transfer_seconds > outcome.migration.transfer_seconds);
    }

    #[test]
    fn losing_every_replica_of_a_shard_forces_checkpoint_restore() {
        // p = 2 on one 4-node cluster → each stage lives on 2 nodes;
        // killing both of stage 0's nodes leaves its shard without a
        // surviving replica (and the cluster still has the other stage's
        // nodes, so the delta itself stays applicable).
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let plan = plan_on(&topo, 1, 2);
        let g = topo.gpus_per_node();
        let stage0_nodes: HashSet<u32> = plan.stage_devices(0).iter().map(|r| r.0 / g).collect();
        assert_eq!(stage0_nodes.len(), 2);
        let mut delta = TopologyDelta::new();
        for n in &stage0_nodes {
            delta.node_loss(*n);
        }
        let outcome = replan_for_delta(
            &topo,
            &plan,
            &delta,
            GRAD,
            &GuidedPlanner,
            &MigrationCosts::new(1 << 20, 45.0),
        )
        .unwrap();
        assert!(!outcome.migration.restored_groups.is_empty());
        assert_eq!(outcome.migration.restore_seconds, 45.0);
    }

    #[test]
    fn scale_up_reduces_or_keeps_dp_sync_cost_sane() {
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let plan = plan_on(&topo, 1, 2);
        let mut delta = TopologyDelta::new();
        delta.node_join(0).node_join(0);
        let outcome = replan_for_delta(
            &topo,
            &plan,
            &delta,
            GRAD,
            &GuidedPlanner,
            &MigrationCosts::new(1 << 20, 30.0),
        )
        .unwrap();
        assert_eq!(
            outcome.new_topology.device_count(),
            topo.device_count() + 2 * topo.gpus_per_node()
        );
        // Joined ranks hold no state yet, so the migration must seed them.
        assert!(!outcome.migration.moves.is_empty());
        assert!(outcome.cost_after_seconds.is_finite());
        assert!(outcome.slowdown() > 0.0);
    }
}
