//! Pipeline layer partitioning: Uniform vs Self-Adapting (Eq. 2).

/// A strategy distributing `layers` transformer layers over pipeline stages
/// with (relative) effective speeds `stage_speeds`.
pub trait PartitionStrategy {
    /// Layers per stage. Must sum to `layers`; every stage gets at least
    /// one layer when `layers >= stages`.
    fn partition(&self, layers: u32, stage_speeds: &[f64]) -> Vec<u32>;

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// Traditional uniform partition: `layers / p` each, remainder spread over
/// the earliest stages (Megatron-LM's default expects divisibility; the
/// remainder rule keeps us total-preserving for odd combinations).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformPartition;

impl PartitionStrategy for UniformPartition {
    fn partition(&self, layers: u32, stage_speeds: &[f64]) -> Vec<u32> {
        let p = stage_speeds.len() as u32;
        assert!(p > 0, "at least one stage");
        let base = layers / p;
        let extra = layers % p;
        (0..p).map(|i| base + u32::from(i < extra)).collect()
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Self-Adapting Pipeline Partition (§3.1.2, Eq. 2).
///
/// ```
/// use holmes_parallel::{PartitionStrategy, SelfAdaptingPartition};
///
/// // Table 1 speeds: S(IB)=197, S(RoCE)=160; α=1.05; 30 layers:
/// // N_ib = ⌊1.05·197/357·30⌋ = 17, N_roce = 13.
/// let part = SelfAdaptingPartition { alpha: 1.05 };
/// assert_eq!(part.partition(30, &[197.0, 160.0]), vec![17, 13]);
/// ```
///
/// Stage `i` with speed `S_i` receives
/// `N_i = ⌊α · S_i / ΣS · N⌋` layers, processed fastest-stage-first, with
/// the final (slowest) stage taking the remainder — exactly the paper's
/// two-stage rule `N_ib = ⌊α·S(IB)/(S(IB)+S(RoCE))·N⌋`, `N_roce = N − N_ib`,
/// generalized to `p` stages. `α > 1` (the paper uses 1.05) deliberately
/// over-allocates to fast stages because the slow stage's NIC also slows
/// its data-parallel synchronization.
#[derive(Debug, Clone, Copy)]
pub struct SelfAdaptingPartition {
    /// The α hyper-parameter (paper default 1.05).
    pub alpha: f64,
}

impl Default for SelfAdaptingPartition {
    fn default() -> Self {
        SelfAdaptingPartition { alpha: 1.05 }
    }
}

impl PartitionStrategy for SelfAdaptingPartition {
    fn partition(&self, layers: u32, stage_speeds: &[f64]) -> Vec<u32> {
        let p = stage_speeds.len();
        assert!(p > 0, "at least one stage");
        assert!(
            stage_speeds.iter().all(|s| *s > 0.0),
            "stage speeds must be positive"
        );
        let total_speed: f64 = stage_speeds.iter().sum();

        // Visit stages fastest-first so the α over-allocation favours them;
        // the last-visited (slowest) stage absorbs the remainder.
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by(|&a, &b| {
            stage_speeds[b]
                .partial_cmp(&stage_speeds[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let mut out = vec![0u32; p];
        let mut remaining = layers;
        let stages_left_min = |visited: usize| (p - visited - 1) as u32;
        for (visited, &i) in order.iter().enumerate() {
            let is_last = visited == p - 1;
            let want = if is_last {
                remaining
            } else {
                let raw = (self.alpha * stage_speeds[i] / total_speed * f64::from(layers)).floor();
                (raw as u32).min(remaining.saturating_sub(stages_left_min(visited)))
            };
            // Guarantee at least one layer per stage when feasible.
            let want = if layers >= p as u32 {
                want.max(1)
            } else {
                want
            };
            out[i] = want.min(remaining);
            remaining -= out[i];
        }
        debug_assert_eq!(out.iter().sum::<u32>(), layers);
        out
    }

    fn name(&self) -> &'static str {
        "self-adapting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_divides_evenly() {
        assert_eq!(UniformPartition.partition(30, &[1.0, 1.0]), vec![15, 15]);
        assert_eq!(
            UniformPartition.partition(36, &[1.0, 1.0, 1.0]),
            vec![12, 12, 12]
        );
    }

    #[test]
    fn uniform_spreads_remainder_to_early_stages() {
        assert_eq!(UniformPartition.partition(31, &[1.0, 1.0]), vec![16, 15]);
        assert_eq!(
            UniformPartition.partition(10, &[1.0, 1.0, 1.0]),
            vec![4, 3, 3]
        );
    }

    #[test]
    fn eq2_two_stage_example() {
        // Table 1 speeds: S(IB)=197, S(RoCE)=160, α=1.05, N=30 layers:
        // N_ib = ⌊1.05·197/357·30⌋ = ⌊17.38⌋ = 17, N_roce = 13.
        let part = SelfAdaptingPartition { alpha: 1.05 }.partition(30, &[197.0, 160.0]);
        assert_eq!(part, vec![17, 13]);
    }

    #[test]
    fn alpha_one_is_proportional() {
        let part = SelfAdaptingPartition { alpha: 1.0 }.partition(30, &[2.0, 1.0]);
        assert_eq!(part, vec![20, 10]);
    }

    #[test]
    fn equal_speeds_recover_uniform_with_alpha_one() {
        let sa = SelfAdaptingPartition { alpha: 1.0 }.partition(36, &[1.0, 1.0, 1.0]);
        assert_eq!(sa, vec![12, 12, 12]);
    }

    #[test]
    fn faster_stage_gets_more_layers() {
        for alpha in [1.0, 1.05, 1.2] {
            let part = SelfAdaptingPartition { alpha }.partition(36, &[197.0, 160.0, 122.0]);
            assert_eq!(part.iter().sum::<u32>(), 36);
            assert!(part[0] >= part[1] && part[1] >= part[2], "{part:?}");
        }
    }

    #[test]
    fn sum_is_preserved_even_when_alpha_overallocates() {
        // α large enough that floors alone would exceed the total.
        let part = SelfAdaptingPartition { alpha: 1.5 }.partition(40, &[1.0, 1.0]);
        assert_eq!(part.iter().sum::<u32>(), 40);
        assert!(part.iter().all(|&l| l >= 1));
    }

    #[test]
    fn every_stage_gets_a_layer_when_possible() {
        // Extreme skew: slowest stage must still receive ≥ 1 layer.
        let part = SelfAdaptingPartition { alpha: 1.05 }.partition(8, &[100.0, 1.0, 1.0]);
        assert_eq!(part.iter().sum::<u32>(), 8);
        assert!(part.iter().all(|&l| l >= 1), "{part:?}");
    }

    #[test]
    fn unsorted_speed_input_keeps_stage_positions() {
        // Slow stage first in the input: output must stay positional.
        let part = SelfAdaptingPartition { alpha: 1.05 }.partition(30, &[160.0, 197.0]);
        assert_eq!(part, vec![13, 17]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        SelfAdaptingPartition::default().partition(10, &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stages_rejected() {
        UniformPartition.partition(10, &[]);
    }
}
