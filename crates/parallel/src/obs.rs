//! Planning-phase observability: post-hoc recording of NIC selection,
//! placement search and replanning results into an
//! [`holmes_obs::ObsSession`].
//!
//! The planning layer has no simulated clock, so every event lands on
//! the trace's synthetic planning clock
//! ([`holmes_obs::TraceSink::planning_event`]) — one deterministic tick
//! per event, in emission order. Recording is strictly *post-hoc* over
//! finished result structures: candidate evaluation may fan out across
//! threads (`EvalMode::Parallel`), and threading a sink through that
//! fan-out would make event order racy. Recording the ranked results
//! afterwards keeps parallel and serial evaluation byte-identical.

use holmes_obs::{Layer, ObsSession};

use crate::nic_selection::{NicSelectionReport, ReplanOutcome};
use crate::search::PlacementSearchResult;

/// Record one plan's Automatic NIC Selection outcome: a `group-formed`
/// event per data-parallel group (with its algorithm and NIC class) and
/// a `tcp-fallback-chosen` event per group forced down to Ethernet.
pub fn record_nic_selection(session: &mut ObsSession, report: &NicSelectionReport) {
    let reg = &mut session.registry;
    reg.counter_add("parallel.dp_groups", report.groups.len() as u64);
    reg.counter_add("parallel.rdma_groups", u64::from(report.rdma_groups));
    reg.counter_add(
        "parallel.ethernet_groups",
        u64::from(report.ethernet_groups),
    );
    for g in &report.groups {
        let nic = match g.rdma_nic {
            Some(t) => format!("\"{t:?}\""),
            None => "\"ethernet\"".to_owned(),
        };
        session.trace.planning_event(
            Layer::Parallel,
            u64::from(g.group),
            format!("group-formed g{} {:?}", g.group, g.algo),
            "nic-selection",
            vec![
                ("devices".to_owned(), format!("{}", g.devices.len())),
                ("nic".to_owned(), nic),
            ],
        );
        if g.forced_tcp {
            reg.counter_add("parallel.forced_tcp_groups", 1);
            session.trace.planning_event(
                Layer::Parallel,
                u64::from(g.group),
                format!("tcp-fallback-chosen g{}", g.group),
                "nic-selection",
                vec![],
            );
        }
    }
}

/// Record a finished placement search: one `candidate-scored` summary
/// (the search only surfaces the winner plus the evaluation count) with
/// the winning order's cost.
pub fn record_search(session: &mut ObsSession, result: &PlacementSearchResult) {
    let reg = &mut session.registry;
    reg.counter_add("parallel.placements_evaluated", result.evaluated);
    reg.gauge_set("parallel.placement_cost_seconds", result.cost_seconds);
    session.trace.planning_event(
        Layer::Parallel,
        0,
        format!(
            "placement-selected [{}]",
            result
                .cluster_order
                .iter()
                .map(|c| c.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
        "placement-search",
        vec![("evaluated".to_owned(), format!("{}", result.evaluated))],
    );
}

/// Record a finished guided synthesis run: the winner (via
/// [`record_search`]'s counters and `placement-selected` event) plus the
/// branch-and-bound search profile — expansion and per-rule pruning
/// counters and a `synthesis-finished` event. All counts are
/// deterministic per topology, so recorded sessions are byte-identical
/// across runs.
pub fn record_synth(
    session: &mut ObsSession,
    result: &PlacementSearchResult,
    stats: &crate::synth::SynthStats,
) {
    record_search(session, result);
    let reg = &mut session.registry;
    reg.counter_add("parallel.synth_expanded", stats.expanded);
    reg.counter_add("parallel.synth_pushed", stats.pushed);
    reg.counter_add("parallel.synth_pruned_bound", stats.pruned_bound);
    reg.counter_add("parallel.synth_pruned_dominated", stats.pruned_dominated);
    reg.counter_add("parallel.synth_pruned_symmetry", stats.pruned_symmetry);
    session.trace.planning_event(
        Layer::Parallel,
        0,
        format!(
            "synthesis-finished ({})",
            if stats.heuristic_won {
                "heuristic-won"
            } else {
                "improved"
            }
        ),
        "plan-synthesis",
        vec![
            ("expanded".to_owned(), format!("{}", stats.expanded)),
            ("pushed".to_owned(), format!("{}", stats.pushed)),
            ("pruned".to_owned(), format!("{}", stats.pruned_total())),
        ],
    );
}

/// Record a NIC-loss replanning pass: a `replan-triggered` event, one
/// `tcp-fallback-chosen` per downgraded group, and the analytic
/// before/after DP-sync costs.
pub fn record_replan(session: &mut ObsSession, outcome: &ReplanOutcome) {
    let reg = &mut session.registry;
    reg.counter_add("parallel.replans", 1);
    reg.counter_add(
        "parallel.replan_downgraded_groups",
        outcome.downgraded_groups.len() as u64,
    );
    reg.gauge_set(
        "parallel.replan_cost_before_seconds",
        outcome.cost_before_seconds,
    );
    reg.gauge_set(
        "parallel.replan_cost_after_seconds",
        outcome.cost_after_seconds,
    );
    session.trace.planning_event(
        Layer::Parallel,
        0,
        "replan-triggered",
        "replan",
        vec![(
            "downgraded".to_owned(),
            format!("{}", outcome.downgraded_groups.len()),
        )],
    );
    for &g in &outcome.downgraded_groups {
        session.trace.planning_event(
            Layer::Parallel,
            u64::from(g),
            format!("tcp-fallback-chosen g{g}"),
            "replan",
            vec![],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::ParallelDegrees;
    use crate::groups::GroupLayout;
    use crate::scheduler::DeviceAssignment;
    use holmes_topology::presets;

    #[test]
    fn nic_selection_recording_is_deterministic() {
        let topo = presets::hybrid_two_cluster(2);
        let n = topo.device_count();
        let layout = GroupLayout::new(ParallelDegrees::new(4, 2, 4, n).unwrap());
        let assignment = DeviceAssignment::identity(n);
        let report = NicSelectionReport::analyze(&topo, &layout, &assignment);
        let render = || {
            let mut s = ObsSession::new();
            record_nic_selection(&mut s, &report);
            (s.registry.to_json(0), s.trace.to_chrome_trace())
        };
        assert_eq!(render(), render());
        let (metrics, trace) = render();
        assert!(metrics.contains("parallel.dp_groups"));
        assert!(trace.contains("group-formed"));
    }

    #[test]
    fn synth_recording_captures_the_search_profile() {
        let topo = presets::table4_4r_4ib_4ib();
        let n = topo.device_count();
        let layout = GroupLayout::new(ParallelDegrees::infer_data(1, 2, n).unwrap());
        let (result, stats) = crate::synth::synthesize_placement(&topo, &layout, 1 << 32);
        let render = || {
            let mut s = ObsSession::new();
            record_synth(&mut s, &result, &stats);
            (s.registry.to_json(0), s.trace.to_chrome_trace())
        };
        assert_eq!(render(), render());
        let (metrics, trace) = render();
        assert!(metrics.contains("parallel.synth_expanded"));
        assert!(metrics.contains("parallel.placements_evaluated"));
        assert!(trace.contains("synthesis-finished"));
        assert!(trace.contains("placement-selected"));
    }
}
