//! Exhaustive placement search over cluster orderings.
//!
//! [`crate::HolmesScheduler`] is a *heuristic*: concatenate clusters
//! fastest-NIC-first. This module searches every cluster permutation and
//! scores each candidate by the analytic data-parallel synchronization
//! cost ([`NicSelectionReport::dp_sync_cost_seconds`]), providing
//!
//! * an optimality check for the heuristic (the test suite proves the
//!   heuristic matches the exhaustive optimum on every paper topology);
//! * a fallback for exotic fleets where fastest-first is not best.
//!
//! Cluster counts in practice are tiny (the paper tops out at 3), so the
//! `M!` search is instantaneous.

use holmes_topology::{ClusterId, Topology};

use crate::groups::GroupLayout;
use crate::nic_selection::NicSelectionReport;
use crate::scheduler::DeviceAssignment;

/// Result of an exhaustive placement search.
#[derive(Debug, Clone)]
pub struct PlacementSearchResult {
    /// The winning cluster visit order.
    pub cluster_order: Vec<ClusterId>,
    /// The assignment induced by that order.
    pub assignment: DeviceAssignment,
    /// Its analytic DP synchronization cost (seconds).
    pub cost_seconds: f64,
    /// Number of permutations evaluated.
    pub evaluated: u32,
}

/// Build the assignment that concatenates clusters in `order`.
pub fn assignment_for_order(topo: &Topology, order: &[ClusterId]) -> DeviceAssignment {
    let mut device_of = Vec::with_capacity(topo.device_count() as usize);
    for &cluster in order {
        device_of.extend(topo.cluster_ranks(cluster));
    }
    DeviceAssignment::from_permutation(device_of)
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for pos in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// Search every cluster ordering; score by the DP sync cost for
/// `gradient_bytes` per rank. Ties break toward the first-found (which,
/// because permutations enumerate stably, keeps results deterministic).
pub fn search_cluster_orders(
    topo: &Topology,
    layout: &GroupLayout,
    gradient_bytes: u64,
) -> PlacementSearchResult {
    let m = topo.cluster_count() as usize;
    let mut best: Option<PlacementSearchResult> = None;
    let mut evaluated = 0;
    for perm in permutations(m) {
        let order: Vec<ClusterId> = perm.iter().map(|&i| ClusterId(i as u32)).collect();
        let assignment = assignment_for_order(topo, &order);
        let report = NicSelectionReport::analyze(topo, layout, &assignment);
        let cost = report.dp_sync_cost_seconds(topo, gradient_bytes);
        evaluated += 1;
        let better = match &best {
            None => true,
            Some(b) => cost < b.cost_seconds - 1e-12,
        };
        if better {
            best = Some(PlacementSearchResult {
                cluster_order: order,
                assignment,
                cost_seconds: cost,
                evaluated,
            });
        }
    }
    let mut result = best.expect("at least one permutation");
    result.evaluated = evaluated;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::ParallelDegrees;
    use crate::scheduler::{HolmesScheduler, Scheduler};
    use holmes_topology::presets;

    const GRAD: u64 = 1 << 32; // 4 GiB, PG-scale

    fn layout_for(topo: &Topology, t: u32, p: u32) -> GroupLayout {
        GroupLayout::new(ParallelDegrees::infer_data(t, p, topo.device_count()).unwrap())
    }

    #[test]
    fn permutations_enumerate_factorially() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        // Each is a permutation of 0..n.
        for p in permutations(4) {
            let mut q = p.clone();
            q.sort_unstable();
            assert_eq!(q, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn heuristic_matches_exhaustive_on_paper_topologies() {
        for (topo, p) in [
            (presets::hybrid_two_cluster(2), 2u32),
            (presets::table4_2r_2r_2ib(), 3),
            (presets::table4_2r_2ib_2ib(), 3),
            (presets::table4_4r_4ib_4ib(), 3),
        ] {
            let layout = layout_for(&topo, 1, p);
            let exhaustive = search_cluster_orders(&topo, &layout, GRAD);
            let heuristic = HolmesScheduler.assign(&topo, &layout);
            let heuristic_cost = NicSelectionReport::analyze(&topo, &layout, &heuristic)
                .dp_sync_cost_seconds(&topo, GRAD);
            assert!(
                heuristic_cost <= exhaustive.cost_seconds + 1e-9,
                "heuristic {heuristic_cost} vs exhaustive {}",
                exhaustive.cost_seconds
            );
        }
    }

    #[test]
    fn search_beats_the_identity_order_when_identity_misaligns() {
        // 3 clusters, but p=2: some stage must span two clusters. The
        // search finds an order that minimizes the damage.
        let topo = presets::table4_2r_2ib_2ib(); // RoCE, IB, IB
        let layout = layout_for(&topo, 1, 2);
        let result = search_cluster_orders(&topo, &layout, GRAD);
        assert_eq!(result.evaluated, 6);
        // With p=2 over 3 clusters, each DP group (d=24) inevitably spans
        // a cluster boundary — no order can fully restore RDMA — but the
        // search must still never lose to the identity order.
        let identity = assignment_for_order(
            &topo,
            &[ClusterId(0), ClusterId(1), ClusterId(2)],
        );
        let identity_cost = NicSelectionReport::analyze(&topo, &layout, &identity)
            .dp_sync_cost_seconds(&topo, GRAD);
        assert!(result.cost_seconds <= identity_cost + 1e-12);
    }

    #[test]
    fn single_cluster_search_is_trivial() {
        let topo = presets::homogeneous(holmes_topology::NicType::InfiniBand, 4);
        let layout = layout_for(&topo, 1, 2);
        let result = search_cluster_orders(&topo, &layout, GRAD);
        assert_eq!(result.evaluated, 1);
        assert_eq!(result.cluster_order, vec![ClusterId(0)]);
    }
}
