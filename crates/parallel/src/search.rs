//! Exhaustive placement search over cluster orderings.
//!
//! [`crate::HolmesScheduler`] is a *heuristic*: concatenate clusters
//! fastest-NIC-first. This module searches every cluster permutation and
//! scores each candidate by the analytic data-parallel synchronization
//! cost ([`NicSelectionReport::dp_sync_cost_seconds`]), providing
//!
//! * the **reference oracle** for the guided branch-and-bound planner in
//!   [`crate::GuidedPlanner`] (the equivalence tests assert the guided search
//!   returns the bit-identical winner on every small topology);
//! * an optimality check for the heuristic (the test suite proves the
//!   heuristic matches the exhaustive optimum on every paper topology).
//!
//! The winner is *canonical*: minimal cost (exact `f64` comparison), ties
//! broken toward the order that is lexicographically smallest after
//! relabeling clusters by [`crate::HolmesScheduler::cluster_order`]
//! position — so among equal-cost orders the heuristic's fastest-first
//! order wins, and every search strategy agrees on one winner.
//!
//! Permutations are *streamed*: the serial path mutates one scratch buffer
//! (Heap's algorithm, one swap per step), the parallel path scores
//! fixed-size chunks — exhaustive search stays memory-bounded even when
//! `M!` is astronomically large (though at that scale you want
//! [`crate::GuidedPlanner`] instead).

use holmes_topology::{ClusterId, Topology};
use rayon::prelude::*;

use crate::groups::GroupLayout;
use crate::nic_selection::NicSelectionReport;
use crate::scheduler::DeviceAssignment;
use crate::skew::PlacementWorkload;
use crate::synth::speed_rank_of;

/// How a candidate-evaluation fan-out is executed.
///
/// Used by [`search_cluster_orders_with_mode`] here and by the autotuner
/// in the `holmes` crate. Parallel evaluation merges results in stable
/// candidate order, so both modes produce identical rankings; `Serial` is
/// the reference path the determinism tests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Fan independent evaluations out across threads (default).
    #[default]
    Parallel,
    /// Evaluate candidates one by one.
    Serial,
}

/// Result of a placement search (exhaustive or guided).
#[derive(Debug, Clone)]
pub struct PlacementSearchResult {
    /// The winning cluster visit order.
    pub cluster_order: Vec<ClusterId>,
    /// The assignment induced by that order.
    pub assignment: DeviceAssignment,
    /// Its analytic DP synchronization cost (seconds).
    pub cost_seconds: f64,
    /// Number of complete plans scored (`M!` overflows `u32` at `M = 13`,
    /// hence `u64`).
    pub evaluated: u64,
}

/// Build the assignment that concatenates clusters in `order`.
pub fn assignment_for_order(topo: &Topology, order: &[ClusterId]) -> DeviceAssignment {
    let mut device_of = Vec::with_capacity(topo.device_count() as usize);
    for &cluster in order {
        device_of.extend(topo.cluster_ranks(cluster));
    }
    DeviceAssignment::from_permutation(device_of)
}

/// Score one complete cluster order: the plan-wide analytic DP sync cost.
///
/// This is the *only* scoring path — the heuristic/exhaustive/guided
/// planners and the synth incumbent all go through it (or through the
/// per-group [`crate::DpGroupNic::sync_cost_seconds`] it folds), keeping
/// costs bit-comparable across strategies. Production callers route
/// through [`cost_of_order_workload`]; this gradient-only form remains as
/// the test suite's reference spelling.
#[cfg(test)]
pub(crate) fn cost_of_order(
    topo: &Topology,
    layout: &GroupLayout,
    order: &[ClusterId],
    gradient_bytes: u64,
) -> f64 {
    cost_of_order_workload(
        topo,
        layout,
        order,
        PlacementWorkload::gradient_only(gradient_bytes),
    )
}

/// [`cost_of_order`] priced against a two-axis [`PlacementWorkload`]:
/// each DP group pays its gradient-sync cost *plus* its compute-straggler
/// skew at the workload's stage FLOPs. With
/// [`PlacementWorkload::gradient_only`] this is bit-identical to
/// [`cost_of_order`].
pub(crate) fn cost_of_order_workload(
    topo: &Topology,
    layout: &GroupLayout,
    order: &[ClusterId],
    workload: PlacementWorkload,
) -> f64 {
    let assignment = assignment_for_order(topo, order);
    NicSelectionReport::analyze(topo, layout, &assignment).dp_workload_cost_seconds(topo, workload)
}

/// Iterative permutation generator over `0..n` (Heap's algorithm).
///
/// Yields each of the `n!` orderings exactly once, starting from the
/// identity, mutating a single scratch buffer with one swap per step.
/// `next_perm` lends a view of that buffer — no per-step allocation or
/// clone; callers that need to keep an ordering copy it out themselves.
pub(crate) struct Permutations {
    items: Vec<usize>,
    counters: Vec<usize>,
    i: usize,
    first: bool,
}

impl Permutations {
    pub(crate) fn new(n: usize) -> Self {
        Permutations {
            items: (0..n).collect(),
            counters: vec![0; n],
            i: 1,
            first: true,
        }
    }

    /// Advance to the next permutation, lending the internal buffer.
    /// Returns `None` once all `n!` orderings have been yielded.
    pub(crate) fn next_perm(&mut self) -> Option<&[usize]> {
        if self.first {
            self.first = false;
            return Some(&self.items);
        }
        while self.i < self.items.len() {
            if self.counters[self.i] < self.i {
                if self.i.is_multiple_of(2) {
                    self.items.swap(0, self.i);
                } else {
                    self.items.swap(self.counters[self.i], self.i);
                }
                self.counters[self.i] += 1;
                self.i = 1;
                return Some(&self.items);
            }
            self.counters[self.i] = 0;
            self.i += 1;
        }
        None
    }

    /// Visit every permutation with a callback (the zero-copy serial path).
    pub(crate) fn for_each(n: usize, mut visit: impl FnMut(&[usize])) {
        let mut perms = Permutations::new(n);
        while let Some(p) = perms.next_perm() {
            visit(p);
        }
    }
}

/// Tracks the canonical winner across streamed candidates: minimal
/// `(cost, speed-rank-relabeled order)` under exact `f64` comparison and
/// lexicographic tie-break. Folding is order-independent, so chunked
/// parallel scoring and the serial scan agree bit-for-bit.
struct CanonicalBest {
    rank_of: Vec<u16>,
    order: Vec<ClusterId>,
    canon: Vec<u16>,
    cost: f64,
}

impl CanonicalBest {
    fn new(rank_of: Vec<u16>) -> Self {
        CanonicalBest {
            rank_of,
            order: Vec::new(),
            canon: Vec::new(),
            cost: f64::INFINITY,
        }
    }

    fn canon_of(&self, order: &[ClusterId]) -> Vec<u16> {
        order.iter().map(|c| self.rank_of[c.0 as usize]).collect()
    }

    fn offer(&mut self, order: &[ClusterId], cost: f64) {
        use std::cmp::Ordering;
        match cost.total_cmp(&self.cost) {
            Ordering::Greater => {}
            Ordering::Less => {
                self.order = order.to_vec();
                self.canon = self.canon_of(order);
                self.cost = cost;
            }
            Ordering::Equal => {
                let canon = self.canon_of(order);
                if canon < self.canon {
                    self.order = order.to_vec();
                    self.canon = canon;
                    self.cost = cost;
                }
            }
        }
    }
}

/// Search every cluster ordering; score by the DP sync cost for
/// `gradient_bytes` per rank. Returns the canonical winner (minimal cost,
/// ties toward the fastest-first relabeled lexicographic minimum).
///
/// Permutations are scored in parallel; use
/// [`search_cluster_orders_with_mode`] to force the serial path.
pub fn search_cluster_orders(
    topo: &Topology,
    layout: &GroupLayout,
    gradient_bytes: u64,
) -> PlacementSearchResult {
    search_cluster_orders_with_mode(topo, layout, gradient_bytes, EvalMode::Parallel)
}

/// [`search_cluster_orders`] with an explicit evaluation mode.
pub fn search_cluster_orders_with_mode(
    topo: &Topology,
    layout: &GroupLayout,
    gradient_bytes: u64,
    mode: EvalMode,
) -> PlacementSearchResult {
    search_cluster_orders_workload_with_mode(
        topo,
        layout,
        PlacementWorkload::gradient_only(gradient_bytes),
        mode,
    )
}

/// [`search_cluster_orders`] priced against a two-axis
/// [`PlacementWorkload`] — candidates additionally pay the
/// compute-straggler skew of their worst DP group. With
/// [`PlacementWorkload::gradient_only`] the winner, cost bits and
/// evaluation count are identical to the gradient-only search.
pub fn search_cluster_orders_workload(
    topo: &Topology,
    layout: &GroupLayout,
    workload: PlacementWorkload,
) -> PlacementSearchResult {
    search_cluster_orders_workload_with_mode(topo, layout, workload, EvalMode::Parallel)
}

/// [`search_cluster_orders_workload`] with an explicit evaluation mode.
pub fn search_cluster_orders_workload_with_mode(
    topo: &Topology,
    layout: &GroupLayout,
    workload: PlacementWorkload,
    mode: EvalMode,
) -> PlacementSearchResult {
    /// Orders scored per parallel batch — bounds live memory at
    /// `CHUNK · M · size_of::<ClusterId>()` instead of `M!`.
    const CHUNK: usize = 1024;

    let m = topo.cluster_count() as usize;
    let mut best = CanonicalBest::new(speed_rank_of(topo));
    let mut evaluated: u64 = 0;

    match mode {
        EvalMode::Serial => {
            // Zero-copy path: score straight off the generator's scratch
            // buffer; only a new winner is copied out.
            let mut order: Vec<ClusterId> = Vec::with_capacity(m);
            Permutations::for_each(m, |perm| {
                order.clear();
                order.extend(perm.iter().map(|&i| ClusterId(i as u32)));
                let cost = cost_of_order_workload(topo, layout, &order, workload);
                evaluated += 1;
                best.offer(&order, cost);
            });
        }
        EvalMode::Parallel => {
            let mut perms = Permutations::new(m);
            let mut chunk: Vec<Vec<ClusterId>> = Vec::with_capacity(CHUNK);
            loop {
                chunk.clear();
                while chunk.len() < CHUNK {
                    match perms.next_perm() {
                        Some(perm) => {
                            chunk.push(perm.iter().map(|&i| ClusterId(i as u32)).collect())
                        }
                        None => break,
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                let costs: Vec<f64> = chunk
                    .par_iter()
                    .map(|order| cost_of_order_workload(topo, layout, order, workload))
                    .collect();
                for (order, cost) in chunk.iter().zip(costs) {
                    evaluated += 1;
                    best.offer(order, cost);
                }
                if chunk.len() < CHUNK {
                    break;
                }
            }
        }
    }

    let assignment = assignment_for_order(topo, &best.order);
    PlacementSearchResult {
        cluster_order: best.order,
        assignment,
        cost_seconds: best.cost,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::ParallelDegrees;
    use crate::scheduler::{HolmesScheduler, Scheduler};
    use holmes_topology::presets;

    const GRAD: u64 = 1 << 32; // 4 GiB, PG-scale

    fn layout_for(topo: &Topology, t: u32, p: u32) -> GroupLayout {
        GroupLayout::new(ParallelDegrees::infer_data(t, p, topo.device_count()).unwrap())
    }

    fn collect_perms(n: usize) -> Vec<Vec<usize>> {
        let mut all = Vec::new();
        Permutations::for_each(n, |p| all.push(p.to_vec()));
        all
    }

    #[test]
    fn permutations_enumerate_factorially() {
        assert_eq!(collect_perms(0).len(), 1);
        assert_eq!(collect_perms(1).len(), 1);
        assert_eq!(collect_perms(3).len(), 6);
        assert_eq!(collect_perms(4).len(), 24);
        // The first ordering is the identity.
        assert_eq!(
            Permutations::new(4).next_perm(),
            Some(&[0usize, 1, 2, 3][..])
        );
        // Each is a permutation of 0..n, and all are distinct.
        let all = collect_perms(4);
        for p in &all {
            let mut q = p.clone();
            q.sort_unstable();
            assert_eq!(q, vec![0, 1, 2, 3]);
        }
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn parallel_and_serial_search_pick_the_same_winner() {
        for (topo, p) in [
            (presets::hybrid_two_cluster(2), 2u32),
            (presets::table4_2r_2r_2ib(), 3),
            (presets::table4_2r_2ib_2ib(), 3),
            (presets::table4_4r_4ib_4ib(), 3),
        ] {
            let layout = layout_for(&topo, 1, p);
            let par = search_cluster_orders_with_mode(&topo, &layout, GRAD, EvalMode::Parallel);
            let ser = search_cluster_orders_with_mode(&topo, &layout, GRAD, EvalMode::Serial);
            assert_eq!(par.cluster_order, ser.cluster_order);
            assert_eq!(par.cost_seconds.to_bits(), ser.cost_seconds.to_bits());
            assert_eq!(par.evaluated, ser.evaluated);
        }
    }

    #[test]
    fn heuristic_matches_exhaustive_on_paper_topologies() {
        for (topo, p) in [
            (presets::hybrid_two_cluster(2), 2u32),
            (presets::table4_2r_2r_2ib(), 3),
            (presets::table4_2r_2ib_2ib(), 3),
            (presets::table4_4r_4ib_4ib(), 3),
        ] {
            let layout = layout_for(&topo, 1, p);
            let exhaustive = search_cluster_orders(&topo, &layout, GRAD);
            let heuristic = HolmesScheduler.assign(&topo, &layout);
            let heuristic_cost = NicSelectionReport::analyze(&topo, &layout, &heuristic)
                .dp_sync_cost_seconds(&topo, GRAD);
            assert!(
                heuristic_cost <= exhaustive.cost_seconds + 1e-9,
                "heuristic {heuristic_cost} vs exhaustive {}",
                exhaustive.cost_seconds
            );
        }
    }

    #[test]
    fn cost_ties_break_toward_the_fastest_first_order() {
        // On the aligned three-cluster preset every order costs the same
        // (each stage block is one cluster), so the canonical winner must
        // be the heuristic's fastest-first order, not the identity.
        let topo = presets::table4_2r_2ib_2ib(); // RoCE, IB, IB
        let layout = layout_for(&topo, 1, 3);
        let result = search_cluster_orders(&topo, &layout, GRAD);
        assert_eq!(result.cluster_order, HolmesScheduler::cluster_order(&topo));
        assert_eq!(
            result.cluster_order,
            vec![ClusterId(1), ClusterId(2), ClusterId(0)]
        );
    }

    #[test]
    fn search_beats_the_identity_order_when_identity_misaligns() {
        // 3 clusters, but p=2: some stage must span two clusters. The
        // search finds an order that minimizes the damage.
        let topo = presets::table4_2r_2ib_2ib(); // RoCE, IB, IB
        let layout = layout_for(&topo, 1, 2);
        let result = search_cluster_orders(&topo, &layout, GRAD);
        assert_eq!(result.evaluated, 6);
        // With p=2 over 3 clusters, each DP group (d=24) inevitably spans
        // a cluster boundary — no order can fully restore RDMA — but the
        // search must still never lose to the identity order.
        let identity = assignment_for_order(&topo, &[ClusterId(0), ClusterId(1), ClusterId(2)]);
        let identity_cost = NicSelectionReport::analyze(&topo, &layout, &identity)
            .dp_sync_cost_seconds(&topo, GRAD);
        assert!(result.cost_seconds <= identity_cost + 1e-12);
    }

    #[test]
    fn single_cluster_search_is_trivial() {
        let topo = presets::homogeneous(holmes_topology::NicType::InfiniBand, 4);
        let layout = layout_for(&topo, 1, 2);
        let result = search_cluster_orders(&topo, &layout, GRAD);
        assert_eq!(result.evaluated, 1);
        assert_eq!(result.cluster_order, vec![ClusterId(0)]);
    }
}
