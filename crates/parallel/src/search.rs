//! Exhaustive placement search over cluster orderings.
//!
//! [`crate::HolmesScheduler`] is a *heuristic*: concatenate clusters
//! fastest-NIC-first. This module searches every cluster permutation and
//! scores each candidate by the analytic data-parallel synchronization
//! cost ([`NicSelectionReport::dp_sync_cost_seconds`]), providing
//!
//! * an optimality check for the heuristic (the test suite proves the
//!   heuristic matches the exhaustive optimum on every paper topology);
//! * a fallback for exotic fleets where fastest-first is not best.
//!
//! Cluster counts in practice are tiny (the paper tops out at 3), so the
//! `M!` search is instantaneous.

use holmes_topology::{ClusterId, Topology};
use rayon::prelude::*;

use crate::groups::GroupLayout;
use crate::nic_selection::NicSelectionReport;
use crate::scheduler::DeviceAssignment;

/// How a candidate-evaluation fan-out is executed.
///
/// Used by [`search_cluster_orders_with_mode`] here and by the autotuner
/// in the `holmes` crate. Parallel evaluation merges results in stable
/// candidate order, so both modes produce identical rankings; `Serial` is
/// the reference path the determinism tests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Fan independent evaluations out across threads (default).
    #[default]
    Parallel,
    /// Evaluate candidates one by one.
    Serial,
}

/// Result of an exhaustive placement search.
#[derive(Debug, Clone)]
pub struct PlacementSearchResult {
    /// The winning cluster visit order.
    pub cluster_order: Vec<ClusterId>,
    /// The assignment induced by that order.
    pub assignment: DeviceAssignment,
    /// Its analytic DP synchronization cost (seconds).
    pub cost_seconds: f64,
    /// Number of permutations evaluated.
    pub evaluated: u32,
}

/// Build the assignment that concatenates clusters in `order`.
pub fn assignment_for_order(topo: &Topology, order: &[ClusterId]) -> DeviceAssignment {
    let mut device_of = Vec::with_capacity(topo.device_count() as usize);
    for &cluster in order {
        device_of.extend(topo.cluster_ranks(cluster));
    }
    DeviceAssignment::from_permutation(device_of)
}

/// Iterative permutation generator over `0..n` (Heap's algorithm).
///
/// Yields each of the `n!` orderings exactly once, starting from the
/// identity, mutating a single buffer with one swap per step instead of
/// the clone-and-insert of a recursive enumeration.
struct Permutations {
    items: Vec<usize>,
    counters: Vec<usize>,
    i: usize,
    first: bool,
}

impl Permutations {
    fn new(n: usize) -> Self {
        Permutations {
            items: (0..n).collect(),
            counters: vec![0; n],
            i: 1,
            first: true,
        }
    }
}

impl Iterator for Permutations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.first {
            self.first = false;
            return Some(self.items.clone());
        }
        while self.i < self.items.len() {
            if self.counters[self.i] < self.i {
                if self.i.is_multiple_of(2) {
                    self.items.swap(0, self.i);
                } else {
                    self.items.swap(self.counters[self.i], self.i);
                }
                self.counters[self.i] += 1;
                self.i = 1;
                return Some(self.items.clone());
            }
            self.counters[self.i] = 0;
            self.i += 1;
        }
        None
    }
}

/// Search every cluster ordering; score by the DP sync cost for
/// `gradient_bytes` per rank. Ties break toward the first-enumerated
/// (permutations enumerate stably, keeping results deterministic).
///
/// Permutations are scored in parallel; use
/// [`search_cluster_orders_with_mode`] to force the serial path.
pub fn search_cluster_orders(
    topo: &Topology,
    layout: &GroupLayout,
    gradient_bytes: u64,
) -> PlacementSearchResult {
    search_cluster_orders_with_mode(topo, layout, gradient_bytes, EvalMode::Parallel)
}

/// [`search_cluster_orders`] with an explicit evaluation mode.
pub fn search_cluster_orders_with_mode(
    topo: &Topology,
    layout: &GroupLayout,
    gradient_bytes: u64,
    mode: EvalMode,
) -> PlacementSearchResult {
    let m = topo.cluster_count() as usize;
    let orders: Vec<Vec<ClusterId>> = Permutations::new(m)
        .map(|perm| perm.into_iter().map(|i| ClusterId(i as u32)).collect())
        .collect();
    // Score each ordering independently (each evaluation builds its own
    // assignment and report), then pick the winner by a serial scan in
    // enumeration order so the tie-break is identical in both modes.
    let score = |order: &Vec<ClusterId>| -> (DeviceAssignment, f64) {
        let assignment = assignment_for_order(topo, order);
        let report = NicSelectionReport::analyze(topo, layout, &assignment);
        let cost = report.dp_sync_cost_seconds(topo, gradient_bytes);
        (assignment, cost)
    };
    let scored: Vec<(DeviceAssignment, f64)> = match mode {
        EvalMode::Parallel => orders.par_iter().map(score).collect(),
        EvalMode::Serial => orders.iter().map(score).collect(),
    };
    let evaluated = scored.len() as u32;
    let mut best: Option<PlacementSearchResult> = None;
    for (order, (assignment, cost)) in orders.into_iter().zip(scored) {
        let better = match &best {
            None => true,
            Some(b) => cost < b.cost_seconds - 1e-12,
        };
        if better {
            best = Some(PlacementSearchResult {
                cluster_order: order,
                assignment,
                cost_seconds: cost,
                evaluated,
            });
        }
    }
    best.expect("at least one permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::ParallelDegrees;
    use crate::scheduler::{HolmesScheduler, Scheduler};
    use holmes_topology::presets;

    const GRAD: u64 = 1 << 32; // 4 GiB, PG-scale

    fn layout_for(topo: &Topology, t: u32, p: u32) -> GroupLayout {
        GroupLayout::new(ParallelDegrees::infer_data(t, p, topo.device_count()).unwrap())
    }

    #[test]
    fn permutations_enumerate_factorially() {
        assert_eq!(Permutations::new(0).count(), 1);
        assert_eq!(Permutations::new(1).count(), 1);
        assert_eq!(Permutations::new(3).count(), 6);
        assert_eq!(Permutations::new(4).count(), 24);
        // The first ordering is the identity (the tie-break favourite).
        assert_eq!(Permutations::new(4).next(), Some(vec![0, 1, 2, 3]));
        // Each is a permutation of 0..n, and all are distinct.
        let all: Vec<Vec<usize>> = Permutations::new(4).collect();
        for p in &all {
            let mut q = p.clone();
            q.sort_unstable();
            assert_eq!(q, vec![0, 1, 2, 3]);
        }
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn parallel_and_serial_search_pick_the_same_winner() {
        for (topo, p) in [
            (presets::hybrid_two_cluster(2), 2u32),
            (presets::table4_2r_2r_2ib(), 3),
            (presets::table4_2r_2ib_2ib(), 3),
            (presets::table4_4r_4ib_4ib(), 3),
        ] {
            let layout = layout_for(&topo, 1, p);
            let par = search_cluster_orders_with_mode(&topo, &layout, GRAD, EvalMode::Parallel);
            let ser = search_cluster_orders_with_mode(&topo, &layout, GRAD, EvalMode::Serial);
            assert_eq!(par.cluster_order, ser.cluster_order);
            assert_eq!(par.cost_seconds.to_bits(), ser.cost_seconds.to_bits());
            assert_eq!(par.evaluated, ser.evaluated);
        }
    }

    #[test]
    fn heuristic_matches_exhaustive_on_paper_topologies() {
        for (topo, p) in [
            (presets::hybrid_two_cluster(2), 2u32),
            (presets::table4_2r_2r_2ib(), 3),
            (presets::table4_2r_2ib_2ib(), 3),
            (presets::table4_4r_4ib_4ib(), 3),
        ] {
            let layout = layout_for(&topo, 1, p);
            let exhaustive = search_cluster_orders(&topo, &layout, GRAD);
            let heuristic = HolmesScheduler.assign(&topo, &layout);
            let heuristic_cost = NicSelectionReport::analyze(&topo, &layout, &heuristic)
                .dp_sync_cost_seconds(&topo, GRAD);
            assert!(
                heuristic_cost <= exhaustive.cost_seconds + 1e-9,
                "heuristic {heuristic_cost} vs exhaustive {}",
                exhaustive.cost_seconds
            );
        }
    }

    #[test]
    fn search_beats_the_identity_order_when_identity_misaligns() {
        // 3 clusters, but p=2: some stage must span two clusters. The
        // search finds an order that minimizes the damage.
        let topo = presets::table4_2r_2ib_2ib(); // RoCE, IB, IB
        let layout = layout_for(&topo, 1, 2);
        let result = search_cluster_orders(&topo, &layout, GRAD);
        assert_eq!(result.evaluated, 6);
        // With p=2 over 3 clusters, each DP group (d=24) inevitably spans
        // a cluster boundary — no order can fully restore RDMA — but the
        // search must still never lose to the identity order.
        let identity = assignment_for_order(&topo, &[ClusterId(0), ClusterId(1), ClusterId(2)]);
        let identity_cost = NicSelectionReport::analyze(&topo, &layout, &identity)
            .dp_sync_cost_seconds(&topo, GRAD);
        assert!(result.cost_seconds <= identity_cost + 1e-12);
    }

    #[test]
    fn single_cluster_search_is_trivial() {
        let topo = presets::homogeneous(holmes_topology::NicType::InfiniBand, 4);
        let layout = layout_for(&topo, 1, 2);
        let result = search_cluster_orders(&topo, &layout, GRAD);
        assert_eq!(result.evaluated, 1);
        assert_eq!(result.cluster_order, vec![ClusterId(0)]);
    }
}
