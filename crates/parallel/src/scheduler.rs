//! Mapping logical ranks onto physical devices.
//!
//! The group algebra of Eqs. 1/3/4 fixes *which logical ranks* form each
//! parallel group; the scheduler decides *which physical GPU* each logical
//! rank runs on. That choice is the paper's core contribution: in a
//! heterogeneous NIC environment it determines whether data-parallel groups
//! land on RDMA-homogeneous device sets (fast) or straddle incompatible
//! NICs (forced down to Ethernet).

use holmes_topology::{ClusterId, Rank, Topology};

use crate::groups::GroupLayout;

/// A bijection between logical ranks `0..N` and physical [`Rank`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAssignment {
    /// `device_of[logical] = physical`.
    device_of: Vec<Rank>,
    /// `logical_of[physical.0] = logical`.
    logical_of: Vec<u32>,
}

impl DeviceAssignment {
    /// Build from a permutation `device_of[logical] = physical`.
    ///
    /// # Panics
    /// Panics if `device_of` is not a permutation of `0..len`.
    pub fn from_permutation(device_of: Vec<Rank>) -> Self {
        let n = device_of.len();
        let mut logical_of = vec![u32::MAX; n];
        for (logical, phys) in device_of.iter().enumerate() {
            let slot = &mut logical_of[phys.0 as usize];
            assert_eq!(*slot, u32::MAX, "device {phys} assigned twice");
            *slot = logical as u32;
        }
        DeviceAssignment {
            device_of,
            logical_of,
        }
    }

    /// The identity assignment over `n` devices.
    pub fn identity(n: u32) -> Self {
        Self::from_permutation((0..n).map(Rank).collect())
    }

    /// Physical device of a logical rank.
    #[inline]
    pub fn device_of(&self, logical: u32) -> Rank {
        self.device_of[logical as usize]
    }

    /// Logical rank running on a physical device.
    #[inline]
    pub fn logical_of(&self, device: Rank) -> u32 {
        self.logical_of[device.0 as usize]
    }

    /// Number of devices.
    #[inline]
    pub fn len(&self) -> u32 {
        self.device_of.len() as u32
    }

    /// Whether the assignment is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.device_of.is_empty()
    }

    /// Map a logical group to physical devices.
    pub fn map_group(&self, logical_group: &[u32]) -> Vec<Rank> {
        logical_group.iter().map(|&l| self.device_of(l)).collect()
    }

    /// Serialize as a launcher rank map: one line per logical rank,
    /// `logical=physical` (the format a `torchrun`/SLURM wrapper consumes
    /// to pin processes to devices).
    pub fn to_rank_map(&self) -> String {
        let mut out = String::with_capacity(self.device_of.len() * 8);
        for (logical, device) in self.device_of.iter().enumerate() {
            out.push_str(&format!(
                "{logical}={}
",
                device.0
            ));
        }
        out
    }

    /// Parse a rank map produced by [`DeviceAssignment::to_rank_map`].
    /// Lines must cover logical ranks `0..n` exactly once; blank lines and
    /// `#` comments are skipped.
    pub fn from_rank_map(text: &str) -> Result<Self, String> {
        let mut pairs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (l, d) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected logical=physical", lineno + 1))?;
            let logical: u32 = l
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad logical rank: {e}", lineno + 1))?;
            let device: u32 = d
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad device rank: {e}", lineno + 1))?;
            pairs.push((logical, device));
        }
        if pairs.is_empty() {
            return Err("empty rank map".to_owned());
        }
        pairs.sort_unstable();
        let n = pairs.len() as u32;
        let mut device_of = Vec::with_capacity(pairs.len());
        for (expect, (logical, device)) in pairs.iter().enumerate() {
            if *logical != expect as u32 {
                return Err(format!(
                    "logical ranks must cover 0..{n} exactly once (saw {logical})"
                ));
            }
            if *device >= n {
                return Err(format!("device rank {device} out of range for {n} devices"));
            }
            device_of.push(Rank(*device));
        }
        // Permutation check (panics in from_permutation become errors).
        let mut seen = vec![false; device_of.len()];
        for d in &device_of {
            if std::mem::replace(&mut seen[d.0 as usize], true) {
                return Err(format!("device {} assigned twice", d.0));
            }
        }
        Ok(Self::from_permutation(device_of))
    }
}

/// A strategy producing a [`DeviceAssignment`] for a topology and layout.
pub trait Scheduler {
    /// Compute the assignment.
    fn assign(&self, topo: &Topology, layout: &GroupLayout) -> DeviceAssignment;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Megatron-LM's default: logical rank `i` runs on hostfile entry `i`.
///
/// Our [`Topology`] enumerates devices cluster-major, so this corresponds
/// to a well-ordered hostfile; see [`InterleavedScheduler`] for the
/// adversarial case.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialScheduler;

impl Scheduler for SequentialScheduler {
    fn assign(&self, topo: &Topology, _layout: &GroupLayout) -> DeviceAssignment {
        DeviceAssignment::identity(topo.device_count())
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// An adversarial hostfile: nodes alternate round-robin across clusters.
///
/// NIC-oblivious frameworks accept whatever order the job launcher emits;
/// with an interleaved order, *every* contiguous logical block mixes
/// clusters, so pipeline stages and data-parallel groups all straddle
/// incompatible NICs. Used in the ablation benches to quantify how much of
/// Holmes's win comes from ordering alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterleavedScheduler;

impl Scheduler for InterleavedScheduler {
    fn assign(&self, topo: &Topology, _layout: &GroupLayout) -> DeviceAssignment {
        // Gather per-cluster node lists (as global node indices).
        let g = topo.gpus_per_node();
        let mut per_cluster: Vec<Vec<u32>> = Vec::new();
        let mut next_node = 0u32;
        for cluster in topo.clusters() {
            let nodes = (next_node..next_node + cluster.nodes.len() as u32).collect();
            next_node += cluster.nodes.len() as u32;
            per_cluster.push(nodes);
        }
        // Round-robin nodes across clusters.
        let mut order: Vec<u32> = Vec::with_capacity(next_node as usize);
        let mut cursors = vec![0usize; per_cluster.len()];
        while order.len() < next_node as usize {
            for (c, nodes) in per_cluster.iter().enumerate() {
                if cursors[c] < nodes.len() {
                    order.push(nodes[cursors[c]]);
                    cursors[c] += 1;
                }
            }
        }
        let mut device_of = Vec::with_capacity((next_node * g) as usize);
        for node in order {
            for gpu in 0..g {
                device_of.push(Rank(node * g + gpu));
            }
        }
        DeviceAssignment::from_permutation(device_of)
    }

    fn name(&self) -> &'static str {
        "interleaved"
    }
}

/// The Holmes NIC-aware scheduler (§3.1.2 *Cross-Cluster Pipeline
/// Parallelism*).
///
/// Orders physical devices cluster-major so that each pipeline stage's
/// logical block `[s·t·d, (s+1)·t·d)` lands inside one cluster whenever
/// stage sizes permit. Consequences, exactly as the paper describes:
///
/// * pipeline parallel groups cross cluster boundaries — the only traffic
///   over slow Ethernet is the (small) stage-to-stage activation traffic;
/// * data parallel groups stay inside a single cluster, on homogeneous
///   RDMA NICs;
/// * tensor parallel groups stay inside a node on NVLink.
///
/// Clusters are ordered fastest-NIC-first so the Self-Adapting Partition
/// (Eq. 2) gives the earliest stages the most layers deterministically.
#[derive(Debug, Clone, Copy, Default)]
pub struct HolmesScheduler;

impl HolmesScheduler {
    /// Cluster visit order: descending effective NIC bandwidth, stable on
    /// ties (preserves topology order).
    ///
    /// Public because this order doubles as the planning stack's *canonical
    /// relabeling*: the guided and exhaustive planners ([`crate::GuidedPlanner`],
    /// [`crate::search_cluster_orders`]) break cost ties toward the order that is
    /// lexicographically smallest after relabeling clusters by their
    /// position here, so "fastest-first" wins every tie and the heuristic,
    /// exhaustive, and guided strategies agree on one canonical winner.
    pub fn cluster_order(topo: &Topology) -> Vec<ClusterId> {
        let mut order: Vec<(usize, f64)> = topo
            .clusters()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bw = c
                    .nodes
                    .iter()
                    .map(|n| n.nic.effective_bytes_per_sec())
                    .fold(0.0, f64::max);
                (i, bw)
            })
            .collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        order
            .into_iter()
            .map(|(i, _)| ClusterId(i as u32))
            .collect()
    }
}

impl Scheduler for HolmesScheduler {
    fn assign(&self, topo: &Topology, _layout: &GroupLayout) -> DeviceAssignment {
        let mut device_of = Vec::with_capacity(topo.device_count() as usize);
        for cluster in Self::cluster_order(topo) {
            device_of.extend(topo.cluster_ranks(cluster));
        }
        DeviceAssignment::from_permutation(device_of)
    }

    fn name(&self) -> &'static str {
        "holmes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrees::ParallelDegrees;
    use holmes_topology::{presets, NicType};

    fn layout_for(topo: &Topology, t: u32, p: u32) -> GroupLayout {
        GroupLayout::new(ParallelDegrees::infer_data(t, p, topo.device_count()).unwrap())
    }

    #[test]
    fn identity_assignment_roundtrips() {
        let a = DeviceAssignment::identity(8);
        for l in 0..8 {
            assert_eq!(a.device_of(l), Rank(l));
            assert_eq!(a.logical_of(Rank(l)), l);
        }
        assert_eq!(a.len(), 8);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn non_permutation_rejected() {
        DeviceAssignment::from_permutation(vec![Rank(0), Rank(0)]);
    }

    #[test]
    fn rank_map_roundtrips() {
        let topo = presets::hybrid_two_cluster(2);
        let layout = layout_for(&topo, 1, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        let text = a.to_rank_map();
        let b = DeviceAssignment::from_rank_map(&text).unwrap();
        assert_eq!(a, b);
        // Comments and blank lines are tolerated.
        let commented = format!("# generated by holmes\n\n{text}");
        assert_eq!(DeviceAssignment::from_rank_map(&commented).unwrap(), a);
    }

    #[test]
    fn rank_map_rejects_malformed_input() {
        for (text, needle) in [
            ("", "empty"),
            ("0:1", "expected logical=physical"),
            ("0=0\n0=1", "exactly once"),
            ("0=0\n2=1", "exactly once"),
            ("0=0\n1=5", "out of range"),
            ("0=0\n1=0", "assigned twice"),
            ("x=0", "bad logical rank"),
            ("0=y", "bad device rank"),
        ] {
            let err = DeviceAssignment::from_rank_map(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn sequential_is_identity() {
        let topo = presets::hybrid_two_cluster(2);
        let layout = layout_for(&topo, 1, 2);
        let a = SequentialScheduler.assign(&topo, &layout);
        assert_eq!(a, DeviceAssignment::identity(32));
    }

    #[test]
    fn interleaved_alternates_clusters() {
        let topo = presets::hybrid_two_cluster(2);
        let layout = layout_for(&topo, 1, 2);
        let a = InterleavedScheduler.assign(&topo, &layout);
        // Logical node order: ib0, roce0, ib1, roce1. Logical ranks 0..8
        // are physical node 0 (IB), 8..16 physical node 2 (first RoCE node).
        assert_eq!(a.device_of(0), Rank(0));
        assert_eq!(a.device_of(8), Rank(16));
        assert_eq!(a.device_of(16), Rank(8));
        assert_eq!(a.device_of(24), Rank(24));
    }

    #[test]
    fn interleaved_handles_unequal_clusters() {
        let topo = presets::hybrid_split(3, 1);
        let layout = layout_for(&topo, 1, 2);
        let a = InterleavedScheduler.assign(&topo, &layout);
        // Order: ib0, roce0, ib1, ib2 — permutation must be complete.
        assert_eq!(a.len(), 32);
        let mut devices: Vec<u32> = (0..32).map(|l| a.device_of(l).0).collect();
        devices.sort();
        assert_eq!(devices, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn holmes_orders_clusters_fastest_first() {
        // Build RoCE first so topology order differs from speed order.
        let topo = holmes_topology::TopologyBuilder::new()
            .cluster("roce", 2, NicType::RoCE)
            .cluster("ib", 2, NicType::InfiniBand)
            .build()
            .unwrap();
        let layout = layout_for(&topo, 1, 2);
        let a = HolmesScheduler.assign(&topo, &layout);
        // Logical rank 0 must land on the InfiniBand cluster (devices 16..32).
        assert!(a.device_of(0).0 >= 16);
        assert!(a.device_of(16).0 < 16);
    }

    #[test]
    fn holmes_stages_align_with_clusters_on_hybrid() {
        let topo = presets::hybrid_two_cluster(2);
        let layout = layout_for(&topo, 1, 2); // t·d = 16 = cluster size
        let a = HolmesScheduler.assign(&topo, &layout);
        for stage in 0..2 {
            let devices: Vec<Rank> = a.map_group(&layout.stage_ranks(stage));
            let clusters: std::collections::BTreeSet<u32> = devices
                .iter()
                .map(|r| topo.coord(*r).unwrap().cluster.0)
                .collect();
            assert_eq!(clusters.len(), 1, "stage {stage} spans {clusters:?}");
        }
    }

    #[test]
    fn holmes_three_cluster_stage_alignment() {
        let topo = presets::table4_2r_2ib_2ib();
        let layout = layout_for(&topo, 1, 3); // p=3, t·d=16 per stage
        let a = HolmesScheduler.assign(&topo, &layout);
        for stage in 0..3 {
            let devices: Vec<Rank> = a.map_group(&layout.stage_ranks(stage));
            let clusters: std::collections::BTreeSet<u32> = devices
                .iter()
                .map(|r| topo.coord(*r).unwrap().cluster.0)
                .collect();
            assert_eq!(clusters.len(), 1, "stage {stage} spans {clusters:?}");
        }
    }

    #[test]
    fn all_schedulers_produce_permutations() {
        let topo = presets::table4_2r_2r_2ib();
        let layout = layout_for(&topo, 1, 3);
        for sched in [
            &SequentialScheduler as &dyn Scheduler,
            &InterleavedScheduler,
            &HolmesScheduler,
        ] {
            let a = sched.assign(&topo, &layout);
            let mut seen: Vec<u32> = (0..a.len()).map(|l| a.device_of(l).0).collect();
            seen.sort();
            assert_eq!(
                seen,
                (0..topo.device_count()).collect::<Vec<_>>(),
                "{}",
                sched.name()
            );
            // Inverse must agree.
            for l in 0..a.len() {
                assert_eq!(a.logical_of(a.device_of(l)), l);
            }
        }
    }
}
