//! The `[TP]`, `[PP]`, `[DP]` group matrices of §2.4 (Eqs. 1, 3, 4).
//!
//! Groups are defined over *logical* ranks `0 .. N-1`; a
//! [`crate::DeviceAssignment`] later maps logical ranks to physical
//! devices. The paper writes the formulas 1-based; we store 0-based and
//! verify the exact 1-based identities in tests.

use crate::degrees::ParallelDegrees;

/// O(1) group membership algebra for a degree triple.
///
/// The paper's Figure 2 example — `t=2, p=4, d=2` over 16 GPUs:
///
/// ```
/// use holmes_parallel::{GroupLayout, ParallelDegrees};
///
/// let layout = GroupLayout::new(ParallelDegrees::new(2, 4, 2, 16).unwrap());
/// assert_eq!(layout.tp_group(0), vec![0, 1]);        // one node's pair
/// assert_eq!(layout.pp_group(0), vec![0, 4, 8, 12]); // one per stage
/// assert_eq!(layout.dp_group(0), vec![0, 2]);        // replicas of a shard
/// assert_eq!(layout.stage_of(9), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLayout {
    degrees: ParallelDegrees,
}

impl GroupLayout {
    /// Layout for validated degrees.
    pub fn new(degrees: ParallelDegrees) -> Self {
        GroupLayout { degrees }
    }

    /// The degree triple.
    #[inline]
    pub fn degrees(&self) -> ParallelDegrees {
        self.degrees
    }

    #[inline]
    fn t(&self) -> u32 {
        self.degrees.tensor
    }
    #[inline]
    fn p(&self) -> u32 {
        self.degrees.pipeline
    }
    #[inline]
    fn d(&self) -> u32 {
        self.degrees.data
    }

    /// Number of tensor parallel groups: `p·d`.
    #[inline]
    pub fn tp_group_count(&self) -> u32 {
        self.p() * self.d()
    }

    /// Number of pipeline parallel groups: `t·d`.
    #[inline]
    pub fn pp_group_count(&self) -> u32 {
        self.t() * self.d()
    }

    /// Number of data parallel groups: `p·t`.
    #[inline]
    pub fn dp_group_count(&self) -> u32 {
        self.p() * self.t()
    }

    /// Eq. 1: members of tensor parallel group `i` (0-based):
    /// `{ i·t, i·t+1, …, i·t+t−1 }`.
    pub fn tp_group(&self, i: u32) -> Vec<u32> {
        debug_assert!(i < self.tp_group_count());
        (0..self.t()).map(|j| i * self.t() + j).collect()
    }

    /// Eq. 3: members of pipeline parallel group `i` (0-based):
    /// `{ i + j·t·d : j ∈ 0..p }` — member `j` sits on pipeline stage `j`.
    pub fn pp_group(&self, i: u32) -> Vec<u32> {
        debug_assert!(i < self.pp_group_count());
        let stride = self.t() * self.d();
        (0..self.p()).map(|j| i + j * stride).collect()
    }

    /// Eq. 4: members of data parallel group `i` (0-based):
    /// `{ (i mod t) + ((i div t)·d + j)·t : j ∈ 0..d }`.
    pub fn dp_group(&self, i: u32) -> Vec<u32> {
        debug_assert!(i < self.dp_group_count());
        let (t, d) = (self.t(), self.d());
        let m = i % t;
        let q = i / t;
        (0..d).map(|j| m + (q * d + j) * t).collect()
    }

    /// Pipeline stage of a logical rank: `r div (t·d)` ∈ `0..p`.
    #[inline]
    pub fn stage_of(&self, rank: u32) -> u32 {
        rank / (self.t() * self.d())
    }

    /// Tensor parallel group index of a logical rank.
    #[inline]
    pub fn tp_group_of(&self, rank: u32) -> u32 {
        rank / self.t()
    }

    /// Pipeline parallel group index of a logical rank.
    #[inline]
    pub fn pp_group_of(&self, rank: u32) -> u32 {
        rank % (self.t() * self.d())
    }

    /// Data parallel group index of a logical rank:
    /// `stage·t + (offset mod t)` where `offset = rank mod (t·d)`.
    #[inline]
    pub fn dp_group_of(&self, rank: u32) -> u32 {
        let offset = rank % (self.t() * self.d());
        self.stage_of(rank) * self.t() + offset % self.t()
    }

    /// Position of a logical rank within its data parallel group.
    #[inline]
    pub fn dp_position_of(&self, rank: u32) -> u32 {
        (rank % (self.t() * self.d())) / self.t()
    }

    /// All logical ranks on a pipeline stage, in order:
    /// `[stage·t·d, (stage+1)·t·d)`.
    pub fn stage_ranks(&self, stage: u32) -> Vec<u32> {
        debug_assert!(stage < self.p());
        let stride = self.t() * self.d();
        (stage * stride..(stage + 1) * stride).collect()
    }

    /// All tensor parallel groups.
    pub fn tp_groups(&self) -> Vec<Vec<u32>> {
        (0..self.tp_group_count())
            .map(|i| self.tp_group(i))
            .collect()
    }

    /// All pipeline parallel groups.
    pub fn pp_groups(&self) -> Vec<Vec<u32>> {
        (0..self.pp_group_count())
            .map(|i| self.pp_group(i))
            .collect()
    }

    /// All data parallel groups.
    pub fn dp_groups(&self) -> Vec<Vec<u32>> {
        (0..self.dp_group_count())
            .map(|i| self.dp_group(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(t: u32, p: u32, d: u32) -> GroupLayout {
        GroupLayout::new(ParallelDegrees::new(t, p, d, t * p * d).unwrap())
    }

    /// Check a family of groups covers 0..N exactly once.
    fn assert_partition(groups: &[Vec<u32>], n: u32) {
        let mut seen = vec![false; n as usize];
        for g in groups {
            for &r in g {
                assert!(!seen[r as usize], "rank {r} appears twice");
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "not all ranks covered");
    }

    #[test]
    fn figure2_example_groups() {
        // Figure 2: t=2, d=2, p=4 over 16 GPUs.
        let l = layout(2, 4, 2);
        assert_eq!(l.tp_group(0), vec![0, 1]);
        assert_eq!(l.pp_group(0), vec![0, 4, 8, 12]);
        assert_eq!(l.dp_group(0), vec![0, 2]);
        assert_eq!(l.dp_group(1), vec![1, 3]);
    }

    #[test]
    fn eq1_matches_paper_one_based_formula() {
        let l = layout(3, 2, 4);
        for i1 in 1..=(l.p() * l.d()) {
            for j1 in 1..=l.t() {
                let paper_rank = (i1 - 1) * l.t() + j1; // 1-based
                assert_eq!(l.tp_group(i1 - 1)[(j1 - 1) as usize] + 1, paper_rank);
            }
        }
    }

    #[test]
    fn eq3_matches_paper_one_based_formula() {
        let l = layout(3, 2, 4);
        for i1 in 1..=(l.t() * l.d()) {
            for j1 in 1..=l.p() {
                let paper_rank = i1 + (j1 - 1) * l.t() * l.d();
                assert_eq!(l.pp_group(i1 - 1)[(j1 - 1) as usize] + 1, paper_rank);
            }
        }
    }

    #[test]
    fn eq4_matches_paper_one_based_formula() {
        let l = layout(3, 2, 4);
        let (t, d) = (l.t(), l.d());
        for i1 in 1..=(l.p() * l.t()) {
            for j1 in 1..=d {
                let paper_rank = (i1 - 1) % t + (((i1 - 1) / t) * d + j1 - 1) * t + 1;
                assert_eq!(l.dp_group(i1 - 1)[(j1 - 1) as usize] + 1, paper_rank);
            }
        }
    }

    #[test]
    fn each_group_family_partitions_all_ranks() {
        for (t, p, d) in [(1, 2, 16), (2, 4, 2), (8, 2, 2), (4, 3, 2), (1, 1, 1)] {
            let l = layout(t, p, d);
            let n = t * p * d;
            assert_partition(&l.tp_groups(), n);
            assert_partition(&l.pp_groups(), n);
            assert_partition(&l.dp_groups(), n);
        }
    }

    #[test]
    fn membership_queries_agree_with_group_lists() {
        let l = layout(2, 3, 4);
        for r in 0..24 {
            assert!(l.tp_group(l.tp_group_of(r)).contains(&r));
            assert!(l.pp_group(l.pp_group_of(r)).contains(&r));
            let dp = l.dp_group(l.dp_group_of(r));
            assert!(dp.contains(&r));
            assert_eq!(dp[l.dp_position_of(r) as usize], r);
        }
    }

    #[test]
    fn pp_group_member_j_is_on_stage_j() {
        let l = layout(2, 4, 2);
        for i in 0..l.pp_group_count() {
            for (j, &r) in l.pp_group(i).iter().enumerate() {
                assert_eq!(l.stage_of(r), j as u32);
            }
        }
    }

    #[test]
    fn dp_groups_stay_within_one_stage() {
        // Every DP group's members must share a pipeline stage — this is
        // what lets Holmes confine DP traffic inside one cluster.
        let l = layout(2, 3, 4);
        for i in 0..l.dp_group_count() {
            let g = l.dp_group(i);
            let stage = l.stage_of(g[0]);
            assert!(g.iter().all(|&r| l.stage_of(r) == stage));
        }
    }

    #[test]
    fn stage_ranks_are_contiguous_blocks() {
        let l = layout(2, 4, 2);
        assert_eq!(l.stage_ranks(0), (0..4).collect::<Vec<_>>());
        assert_eq!(l.stage_ranks(3), (12..16).collect::<Vec<_>>());
    }

    #[test]
    fn group_counts() {
        let l = layout(2, 4, 3);
        assert_eq!(l.tp_group_count(), 12);
        assert_eq!(l.pp_group_count(), 6);
        assert_eq!(l.dp_group_count(), 8);
    }
}
