//! Compute-skew pricing for hyper-heterogeneous fleets.
//!
//! The Holmes planner scores a placement by the max-fold of per-DP-group
//! gradient-sync costs ([`crate::NicSelectionReport::dp_sync_cost_seconds`]).
//! That fold prices *NIC* heterogeneity but assumes every device computes
//! at the same rate. When a fleet mixes accelerator generations (H2-style
//! hyper-heterogeneity), a DP group whose replicas straddle generations
//! pays a *straggler tax*: every collective waits for the slowest member
//! to finish its backward, so the group's effective step time stretches by
//! the compute-time gap between its fastest and slowest members.
//!
//! [`PlacementWorkload`] carries the second signal needed to price that
//! gap — the per-device FLOPs of one pipeline stage's work — alongside the
//! per-rank gradient volume the sync fold already used. A group's priced
//! cost becomes `sync_seconds + skew_seconds`, where the skew term is
//! `max − min` of the members' [`holmes_topology::GpuProfile::compute_seconds`]
//! at the workload's stage FLOPs:
//!
//! * **compute-uniform fleets are bit-identical** — identical profiles give
//!   `max == min`, so the skew term is exactly `+0.0` and `sync + 0.0`
//!   preserves every historical cost, pruning decision, and snapshot
//!   bit-for-bit (and [`PlacementWorkload::gradient_only`] forces the same
//!   degeneration on any fleet by pricing zero stage FLOPs);
//! * **the guided bound stays admissible** — the skew term is non-negative
//!   and a function of the group's device set alone, so the max-fold over
//!   *determined* groups is still a lower bound on any completion, and
//!   still the exact cost at a complete state;
//! * **DP-group formation weighs compute skew alongside NIC homogeneity** —
//!   orders that confine each DP group to one generation eliminate their
//!   skew terms exactly as orders confining groups to one NIC class
//!   eliminate their TCP downgrades.

/// What a candidate placement is priced against: the per-rank gradient
/// volume (NIC axis) and the per-device FLOPs of one stage's work
/// (compute axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementWorkload {
    /// Data-parallel gradient bytes per rank (the historical signal).
    pub gradient_bytes: u64,
    /// Per-device FLOPs of one pipeline stage's per-iteration work; the
    /// straggler-skew term prices each DP group's fastest-vs-slowest
    /// compute gap at this kernel size. Zero disables skew pricing.
    pub stage_flops: f64,
}

impl PlacementWorkload {
    /// A workload pricing both axes.
    pub fn new(gradient_bytes: u64, stage_flops: f64) -> Self {
        debug_assert!(stage_flops >= 0.0, "stage FLOPs must be non-negative");
        PlacementWorkload {
            gradient_bytes,
            stage_flops,
        }
    }

    /// The historical gradient-only workload: skew pricing disabled, so
    /// every cost this workload produces is bit-identical to the pre-skew
    /// scoring path.
    pub fn gradient_only(gradient_bytes: u64) -> Self {
        PlacementWorkload {
            gradient_bytes,
            stage_flops: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_only_disables_skew() {
        let w = PlacementWorkload::gradient_only(1 << 32);
        assert_eq!(w.gradient_bytes, 1 << 32);
        assert_eq!(w.stage_flops, 0.0);
    }

    #[test]
    fn new_carries_both_axes() {
        let w = PlacementWorkload::new(4096, 1.5e12);
        assert_eq!(w.gradient_bytes, 4096);
        assert_eq!(w.stage_flops, 1.5e12);
    }
}
