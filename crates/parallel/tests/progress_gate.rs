//! Progress gate over planner outputs: every DP-group collective a plan
//! selects, and every churn re-plan the delta machinery produces, must
//! pass the symbolic progress checker — not just the structural
//! verifier.

use holmes_analysis::progress::{
    check_progress, EventSpace, ProgressCollective, ProgressSpec, RetryModel,
};
use holmes_analysis::{verify_plan, verify_replan_progress};
use holmes_netsim::algo::CollKind;
use holmes_parallel::{
    replan_for_delta, DpCollectiveAlgo, GroupLayout, GuidedPlanner, HolmesScheduler,
    MigrationCosts, ParallelDegrees, ParallelPlan, Scheduler, TopologyDelta,
};
use holmes_topology::{presets, Topology};

const GRAD: u64 = 1 << 30;

fn plan_on(topo: &Topology, t: u32, p: u32) -> ParallelPlan {
    let layout = GroupLayout::new(ParallelDegrees::infer_data(t, p, topo.device_count()).unwrap());
    let assignment = HolmesScheduler.assign(topo, &layout);
    let per_stage = vec![4u32; p as usize];
    ParallelPlan::new(layout, assignment, per_stage, true)
}

/// The collective kind a DP group's gradient sync expands to.
fn kind_of(algo: DpCollectiveAlgo) -> CollKind {
    match algo {
        DpCollectiveAlgo::RingRdma | DpCollectiveAlgo::RingEthernet => CollKind::AllReduce,
        DpCollectiveAlgo::HierarchicalTwoLevel => CollKind::HierarchicalAllReduce,
    }
}

/// Build a progress spec covering every DP group of a plan, with the
/// default retry model armed.
fn progress_spec_for(topo: &Topology, plan: &ParallelPlan) -> ProgressSpec {
    let report = plan.nic_report(topo);
    let collectives = report
        .groups
        .iter()
        .filter(|g| g.devices.len() > 1)
        .map(|g| ProgressCollective::from_kind(topo, kind_of(g.algo), g.devices.clone(), GRAD))
        .collect();
    ProgressSpec {
        collectives,
        retry: Some(RetryModel::default()),
        has_trunk: topo.cluster_count() > 1,
        extra_wait_edges: Vec::new(),
    }
}

#[test]
fn planner_outputs_survive_the_event_space() {
    let topologies = [
        presets::hybrid_two_cluster(2),
        presets::table4_2r_2ib_2ib(),
        presets::hybrid_split(2, 2),
    ];
    for topo in &topologies {
        let plan = plan_on(topo, 1, 2);
        assert!(verify_plan(topo, &plan, 8, None).is_empty());
        let spec = progress_spec_for(topo, &plan);
        let report = check_progress(topo, &spec, EventSpace::quick());
        assert!(
            report.is_clean(),
            "planner output fails progress check: {:?}",
            report.counterexamples
        );
        assert!(report.scenarios > 0);
    }
}

#[test]
fn guided_planner_fleet_output_survives_singles() {
    let topo = presets::synthetic_fleet(8, 2);
    let plan = plan_on(&topo, 1, 2);
    let spec = progress_spec_for(&topo, &plan);
    // Singles-only with a cap: the fleet's event alphabet is large and
    // the sampled sweep reports what it skipped.
    let report = check_progress(
        &topo,
        &spec,
        EventSpace {
            pairwise: false,
            max_scenarios: Some(128),
        },
    );
    assert!(
        report.is_clean(),
        "fleet plan fails progress check: {:?}",
        report.counterexamples
    );
}

#[test]
fn churn_replans_are_reachable_on_the_post_churn_fabric() {
    let topologies = [
        presets::hybrid_two_cluster(2),
        presets::table4_2r_2ib_2ib(),
        presets::same_nic_two_clusters(holmes_topology::NicType::InfiniBand, 2),
    ];
    for topo in &topologies {
        let plan = plan_on(topo, 1, 2);
        for event in ["loss", "join", "both"] {
            let mut delta = TopologyDelta::new();
            if event != "join" {
                delta.node_loss(1);
            }
            if event != "loss" {
                delta.node_join(0);
            }
            let costs = MigrationCosts::new(1 << 26, 30.0);
            let outcome = replan_for_delta(topo, &plan, &delta, GRAD, &GuidedPlanner, &costs)
                .expect("replan succeeds");
            let defects = verify_replan_progress(&outcome);
            assert!(
                defects.is_empty(),
                "{event} replan fails progress verification: {defects:?}"
            );
        }
    }
}
