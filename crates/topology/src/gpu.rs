//! GPU accelerator modelling.

/// Performance profile of one GPU device.
///
/// The paper's experiments run on NVIDIA A100-80GB parts with a peak of
/// 312 teraFLOP/s at 16-bit precision (§4.1). Real kernels never reach peak;
/// the achievable fraction depends mostly on how large the per-kernel GEMMs
/// are, which in turn grows with micro-batch size and hidden size. We model
/// that with a saturating occupancy curve, calibrated so that the PG1
/// InfiniBand run of Table 1 lands near the reported 197 TFLOPS.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuProfile {
    /// Human-readable device name.
    pub name: String,
    /// Peak device throughput in teraFLOP/s (16-bit precision).
    pub peak_tflops: f64,
    /// Device memory capacity in GiB.
    pub memory_gib: f64,
    /// Asymptotic fraction of peak achievable by large GEMMs, in `(0, 1]`.
    pub max_efficiency: f64,
    /// Work granularity (in MFLOPs per kernel) at which efficiency reaches
    /// half of `max_efficiency`. Smaller kernels are less efficient.
    pub half_saturation_mflops: f64,
}

impl GpuProfile {
    /// NVIDIA A100-SXM4-80GB reference profile.
    pub fn a100_80g() -> Self {
        GpuProfile {
            name: "NVIDIA A100-80GB".to_owned(),
            peak_tflops: 312.0,
            memory_gib: 80.0,
            max_efficiency: 0.70,
            half_saturation_mflops: 2_000.0,
        }
    }

    /// NVIDIA V100-SXM2-32GB: the previous accelerator generation. Peak is
    /// 125 TFLOP/s at 16-bit precision with a lower achievable fraction
    /// (first-generation tensor cores) and a smaller half-saturation point
    /// (smaller GEMMs already fill the part).
    pub fn v100_32g() -> Self {
        GpuProfile {
            name: "NVIDIA V100-32GB".to_owned(),
            peak_tflops: 125.0,
            memory_gib: 32.0,
            max_efficiency: 0.62,
            half_saturation_mflops: 1_200.0,
        }
    }

    /// NVIDIA H100-SXM5-80GB: the next accelerator generation. Peak is
    /// 989 TFLOP/s at 16-bit precision; large kernels reach a higher
    /// fraction of peak, but the part needs much bigger GEMMs to saturate.
    pub fn h100_80g() -> Self {
        GpuProfile {
            name: "NVIDIA H100-80GB".to_owned(),
            peak_tflops: 989.0,
            memory_gib: 80.0,
            max_efficiency: 0.75,
            half_saturation_mflops: 6_000.0,
        }
    }

    /// Achieved fraction of peak for a kernel of `flops` floating-point
    /// operations (Michaelis–Menten saturation curve).
    #[inline]
    pub fn efficiency_for(&self, flops: f64) -> f64 {
        let mflops = flops / 1e6;
        self.max_efficiency * mflops / (mflops + self.half_saturation_mflops)
    }

    /// Wall-clock seconds to execute `flops` operations on this device.
    #[inline]
    pub fn compute_seconds(&self, flops: f64) -> f64 {
        if flops <= 0.0 {
            return 0.0;
        }
        let eff = self.efficiency_for(flops).max(1e-6);
        flops / (self.peak_tflops * 1e12 * eff)
    }

    /// Device memory capacity in bytes.
    #[inline]
    pub fn memory_bytes(&self) -> u64 {
        (self.memory_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_paper_peak() {
        let gpu = GpuProfile::a100_80g();
        assert_eq!(gpu.peak_tflops, 312.0);
        assert_eq!(gpu.memory_gib, 80.0);
    }

    #[test]
    fn efficiency_is_monotone_in_kernel_size() {
        let gpu = GpuProfile::a100_80g();
        let small = gpu.efficiency_for(1e8);
        let medium = gpu.efficiency_for(1e10);
        let large = gpu.efficiency_for(1e13);
        assert!(small < medium && medium < large);
        assert!(large <= gpu.max_efficiency);
    }

    #[test]
    fn efficiency_saturates_near_max() {
        let gpu = GpuProfile::a100_80g();
        // An enormous kernel should be within 1% of the asymptote.
        let eff = gpu.efficiency_for(1e15);
        assert!(eff > gpu.max_efficiency * 0.99);
    }

    #[test]
    fn compute_seconds_scales_superlinearly_down_for_small_kernels() {
        let gpu = GpuProfile::a100_80g();
        // Halving the work must less-than-halve the speed (efficiency drops),
        // so time reduction is sublinear.
        let t_big = gpu.compute_seconds(2e12);
        let t_small = gpu.compute_seconds(1e12);
        assert!(t_small > t_big / 2.0);
        assert!(t_small < t_big);
    }

    #[test]
    fn zero_flops_takes_zero_time() {
        assert_eq!(GpuProfile::a100_80g().compute_seconds(0.0), 0.0);
    }

    #[test]
    fn memory_bytes_conversion() {
        let gpu = GpuProfile::a100_80g();
        assert_eq!(gpu.memory_bytes(), 80 * 1024 * 1024 * 1024);
    }

    #[test]
    fn generations_order_by_peak_and_capacity() {
        let v100 = GpuProfile::v100_32g();
        let a100 = GpuProfile::a100_80g();
        let h100 = GpuProfile::h100_80g();
        assert!(v100.peak_tflops < a100.peak_tflops);
        assert!(a100.peak_tflops < h100.peak_tflops);
        assert!(v100.memory_bytes() < a100.memory_bytes());
        assert_eq!(h100.memory_bytes(), a100.memory_bytes());
        // A large stage-scale kernel must still run strictly faster on each
        // newer generation despite the efficiency-curve differences.
        for flops in [1e12, 1e13, 1e14] {
            assert!(v100.compute_seconds(flops) > a100.compute_seconds(flops));
            assert!(a100.compute_seconds(flops) > h100.compute_seconds(flops));
        }
    }
}
