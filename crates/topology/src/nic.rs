//! Network interface card (NIC) modelling.
//!
//! The paper distinguishes three NIC technologies (§2.1.1): InfiniBand and
//! RoCE — the two mutually *incompatible* RDMA implementations — and plain
//! Ethernet. Two devices can use RDMA between them only when both sit behind
//! the *same* RDMA technology and share a high-speed switch; every other
//! pairing is forced down to TCP over Ethernet.

use std::fmt;

/// The three NIC technologies considered by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NicType {
    /// Dedicated InfiniBand fabric (RDMA).
    InfiniBand,
    /// RDMA over Converged Ethernet (RDMA on an Ethernet fabric).
    RoCE,
    /// Plain Ethernet; only TCP/IP transport is available.
    Ethernet,
}

impl NicType {
    /// All NIC types, in the order the paper's tables list them.
    pub const ALL: [NicType; 3] = [NicType::InfiniBand, NicType::RoCE, NicType::Ethernet];

    /// Whether this NIC technology supports RDMA at all.
    #[inline]
    pub fn supports_rdma(self) -> bool {
        !matches!(self, NicType::Ethernet)
    }

    /// Whether two NICs of these types can establish an RDMA connection.
    ///
    /// InfiniBand and RoCE are *inherently incompatible* (§1): RDMA is only
    /// possible between identical RDMA technologies.
    #[inline]
    pub fn rdma_compatible(self, other: NicType) -> bool {
        self == other && self.supports_rdma()
    }

    /// Short label used in paper-style tables.
    pub fn label(self) -> &'static str {
        match self {
            NicType::InfiniBand => "InfiniBand",
            NicType::RoCE => "RoCE",
            NicType::Ethernet => "Ethernet",
        }
    }
}

impl fmt::Display for NicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Performance profile of a NIC.
///
/// `bandwidth_gbps` is the *line rate* the paper reports in Table 1
/// (200 Gb/s for both RDMA NICs, 25 Gb/s for Ethernet). `efficiency` is the
/// fraction of line rate achievable by bulk transfers under the NIC's
/// protocol: even at identical line rate, the paper measures RoCE well below
/// InfiniBand (Table 1: 160 vs 197 TFLOPS) because of PFC/ECN congestion
/// artifacts on converged Ethernet fabrics; TCP on plain Ethernet pays
/// kernel/stack overheads. Those protocol effects are folded into this single
/// factor, calibrated against Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicProfile {
    /// Which technology this NIC implements.
    pub nic_type: NicType,
    /// Line rate in gigabits per second.
    pub bandwidth_gbps: f64,
    /// One-way small-message latency in microseconds.
    pub latency_us: f64,
    /// Achievable fraction of line rate for bulk transfers, in `(0, 1]`.
    pub efficiency: f64,
    /// Number of NIC ports on a node. Modern GPU nodes (e.g. DGX A100)
    /// dedicate one RDMA port per GPU; commodity Ethernet nodes often share
    /// one or two ports across all GPUs.
    pub ports_per_node: u32,
    /// Compute-interference factor (≥ 1.0): how much slower GPU kernels run
    /// on nodes behind this NIC while training. Worse fabrics steal compute
    /// via NCCL proxy/SM contention, TCP stack CPU load, and stalls on
    /// straggling dependent transfers — Table 1 of the paper shows the
    /// *same* A100s achieving 197/160/122 TFLOPS behind IB/RoCE/Ethernet,
    /// far more spread than exposed collective time alone explains. This
    /// factor is calibrated against Table 1 (see `holmes::calibration`).
    pub compute_interference: f64,
}

impl NicProfile {
    /// Reference InfiniBand HDR profile (200 Gb/s, one port per GPU).
    pub fn infiniband_200g() -> Self {
        NicProfile {
            nic_type: NicType::InfiniBand,
            bandwidth_gbps: 200.0,
            latency_us: 2.0,
            efficiency: 0.92,
            ports_per_node: 2,
            compute_interference: 1.0,
        }
    }

    /// Reference RoCE v2 profile (200 Gb/s line rate, one port per GPU).
    ///
    /// The lower efficiency relative to InfiniBand reproduces the Table 1
    /// observation that RoCE at equal bandwidth delivers materially lower
    /// training throughput.
    pub fn roce_200g() -> Self {
        NicProfile {
            nic_type: NicType::RoCE,
            bandwidth_gbps: 200.0,
            latency_us: 4.0,
            efficiency: 0.25,
            ports_per_node: 2,
            compute_interference: 1.16,
        }
    }

    /// Reference data-center Ethernet profile (25 Gb/s, TCP only).
    pub fn ethernet_25g() -> Self {
        NicProfile {
            nic_type: NicType::Ethernet,
            bandwidth_gbps: 25.0,
            latency_us: 30.0,
            efficiency: 0.95,
            ports_per_node: 1,
            compute_interference: 1.03,
        }
    }

    /// The reference profile for a NIC type (used by topology presets).
    pub fn reference(nic_type: NicType) -> Self {
        match nic_type {
            NicType::InfiniBand => Self::infiniband_200g(),
            NicType::RoCE => Self::roce_200g(),
            NicType::Ethernet => Self::ethernet_25g(),
        }
    }

    /// Effective bulk bandwidth of one port in bytes per second.
    #[inline]
    pub fn effective_bytes_per_sec(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / 8.0 * self.efficiency
    }

    /// Aggregate effective node uplink bandwidth (all ports) in bytes/s.
    #[inline]
    pub fn node_uplink_bytes_per_sec(&self) -> f64 {
        self.effective_bytes_per_sec() * f64::from(self.ports_per_node)
    }

    /// One-way latency in nanoseconds (integral, for the simulator clock).
    #[inline]
    pub fn latency_ns(&self) -> u64 {
        (self.latency_us * 1_000.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_compatibility_matrix() {
        use NicType::*;
        assert!(InfiniBand.rdma_compatible(InfiniBand));
        assert!(RoCE.rdma_compatible(RoCE));
        assert!(!InfiniBand.rdma_compatible(RoCE));
        assert!(!RoCE.rdma_compatible(InfiniBand));
        assert!(!Ethernet.rdma_compatible(Ethernet));
        assert!(!Ethernet.rdma_compatible(InfiniBand));
        assert!(!RoCE.rdma_compatible(Ethernet));
    }

    #[test]
    fn only_rdma_types_support_rdma() {
        assert!(NicType::InfiniBand.supports_rdma());
        assert!(NicType::RoCE.supports_rdma());
        assert!(!NicType::Ethernet.supports_rdma());
    }

    #[test]
    fn reference_profiles_match_table1_bandwidths() {
        // Table 1 lists 200 Gb/s for both RDMA NICs and 25 Gb/s for Ethernet.
        assert_eq!(NicProfile::infiniband_200g().bandwidth_gbps, 200.0);
        assert_eq!(NicProfile::roce_200g().bandwidth_gbps, 200.0);
        assert_eq!(NicProfile::ethernet_25g().bandwidth_gbps, 25.0);
    }

    #[test]
    fn roce_is_slower_than_ib_despite_equal_line_rate() {
        let ib = NicProfile::infiniband_200g();
        let roce = NicProfile::roce_200g();
        assert_eq!(ib.bandwidth_gbps, roce.bandwidth_gbps);
        assert!(ib.effective_bytes_per_sec() > roce.effective_bytes_per_sec());
    }

    #[test]
    fn effective_bandwidth_computation() {
        let nic = NicProfile {
            nic_type: NicType::Ethernet,
            bandwidth_gbps: 8.0,
            latency_us: 1.0,
            efficiency: 0.5,
            ports_per_node: 2,
            compute_interference: 1.0,
        };
        // 8 Gb/s = 1e9 B/s; 50% efficiency = 5e8 B/s per port.
        assert_eq!(nic.effective_bytes_per_sec(), 5e8);
        assert_eq!(nic.node_uplink_bytes_per_sec(), 1e9);
        assert_eq!(nic.latency_ns(), 1_000);
    }

    #[test]
    fn display_labels() {
        assert_eq!(NicType::InfiniBand.to_string(), "InfiniBand");
        assert_eq!(NicType::RoCE.to_string(), "RoCE");
        assert_eq!(NicType::Ethernet.to_string(), "Ethernet");
    }
}
