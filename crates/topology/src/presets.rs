//! Preset topologies matching every machine environment in the paper's
//! experiment section (§4.1 "NIC Environment").
//!
//! All presets use paper-standard nodes: 8× A100-80GB, NVLink intra-node,
//! a 25 Gb/s Ethernet fallback, and reference NIC profiles.

use crate::builder::TopologyBuilder;
use crate::gpu::GpuProfile;
use crate::nic::{NicProfile, NicType};
use crate::topology::Topology;

/// *InfiniBand* / *RoCE* / *Ethernet* environments: one cluster of
/// `node_count` nodes, every node behind the same NIC technology and a
/// high-speed switch.
pub fn homogeneous(nic: NicType, node_count: u32) -> Topology {
    TopologyBuilder::new()
        .cluster(format!("{nic}-cluster"), node_count, nic)
        .build()
        .expect("non-empty homogeneous topology")
}

/// The *Hybird* environment of Table 3: two clusters with the same number
/// of nodes, one InfiniBand and one RoCE, no high-speed interconnect
/// between them.
pub fn hybrid_two_cluster(nodes_per_cluster: u32) -> Topology {
    TopologyBuilder::new()
        .cluster("ib-cluster", nodes_per_cluster, NicType::InfiniBand)
        .cluster("roce-cluster", nodes_per_cluster, NicType::RoCE)
        .build()
        .expect("non-empty hybrid topology")
}

/// Unequal hybrid split (e.g. Figure 6's "4 nodes RoCE + 4 nodes IB" is the
/// equal case; this supports arbitrary splits for extensions).
pub fn hybrid_split(ib_nodes: u32, roce_nodes: u32) -> Topology {
    TopologyBuilder::new()
        .cluster("ib-cluster", ib_nodes, NicType::InfiniBand)
        .cluster("roce-cluster", roce_nodes, NicType::RoCE)
        .build()
        .expect("non-empty hybrid topology")
}

/// Figure 4's Case-2 environments with *homogeneous* NICs but **no**
/// inter-cluster high-speed interconnect ("InfiniBand & Ethernet" /
/// "RoCE & Ethernet"): two clusters of `nodes_per_cluster` nodes each, both
/// behind `nic`, communicating across clusters only via Ethernet.
pub fn same_nic_two_clusters(nic: NicType, nodes_per_cluster: u32) -> Topology {
    TopologyBuilder::new()
        .cluster(format!("{nic}-cluster-1"), nodes_per_cluster, nic)
        .cluster(format!("{nic}-cluster-2"), nodes_per_cluster, nic)
        .build()
        .expect("non-empty two-cluster topology")
}

/// Table 4's three-cluster environments. `spec` gives, per cluster, the node
/// count and NIC technology, e.g. `[(2, RoCE), (2, RoCE), (2, InfiniBand)]`
/// for "2RoCE & 2RoCE & 2IB".
pub fn three_cluster(spec: [(u32, NicType); 3]) -> Topology {
    let mut builder = TopologyBuilder::new();
    for (i, (nodes, nic)) in spec.into_iter().enumerate() {
        builder = builder.cluster(format!("{nic}-cluster-{i}"), nodes, nic);
    }
    builder.build().expect("non-empty three-cluster topology")
}

/// Table 4 column "2RoCE & 2RoCE & 2IB" (6 nodes / 48 GPUs).
pub fn table4_2r_2r_2ib() -> Topology {
    three_cluster([
        (2, NicType::RoCE),
        (2, NicType::RoCE),
        (2, NicType::InfiniBand),
    ])
}

/// Table 4 column "2RoCE & 2IB & 2IB" (6 nodes / 48 GPUs).
pub fn table4_2r_2ib_2ib() -> Topology {
    three_cluster([
        (2, NicType::RoCE),
        (2, NicType::InfiniBand),
        (2, NicType::InfiniBand),
    ])
}

/// Table 4 column "4RoCE & 4IB & 4IB" (12 nodes / 96 GPUs).
pub fn table4_4r_4ib_4ib() -> Topology {
    three_cluster([
        (4, NicType::RoCE),
        (4, NicType::InfiniBand),
        (4, NicType::InfiniBand),
    ])
}

/// A generated many-cluster fleet for plan-synthesis scale tests: `count`
/// clusters of `nodes_per_cluster` paper-standard nodes each, cycling
/// through four NIC speed classes (InfiniBand 200/100 Gb/s and RoCE
/// 200/100 Gb/s). `synthetic_fleet(64, 2)` is the ISSUE-7 benchmark
/// fleet: 64 clusters / 128 nodes / 1,024 ranks — far beyond what `M!`
/// order enumeration can score, and heterogeneous enough (four structural
/// equivalence classes of 16 clusters each) to exercise the guided
/// planner's symmetry and dominance pruning rather than collapse to a
/// single class.
pub fn synthetic_fleet(count: u32, nodes_per_cluster: u32) -> Topology {
    let classes: [(&str, NicProfile); 4] = [
        ("ib200", NicProfile::infiniband_200g()),
        (
            "ib100",
            NicProfile {
                bandwidth_gbps: 100.0,
                ..NicProfile::infiniband_200g()
            },
        ),
        ("roce200", NicProfile::roce_200g()),
        (
            "roce100",
            NicProfile {
                bandwidth_gbps: 100.0,
                ..NicProfile::roce_200g()
            },
        ),
    ];
    let mut builder = TopologyBuilder::new();
    for i in 0..count {
        let (class, profile) = &classes[(i % 4) as usize];
        builder =
            builder.cluster_with_profile(format!("fleet-{class}-{i}"), nodes_per_cluster, *profile);
    }
    builder.build().expect("non-empty synthetic fleet")
}

/// Hyper-heterogeneous three-cluster preset mixing accelerator
/// *generations* and NIC technologies: 2 H100 nodes behind InfiniBand,
/// 2 A100 nodes behind RoCE, and 2 V100 nodes behind InfiniBand
/// (6 nodes / 48 GPUs). Compute skew and NIC skew pull the partition in
/// different directions, which is exactly the case the straggler-aware
/// Eq. 2 generalization must balance.
pub fn gen_mix_3c() -> Topology {
    TopologyBuilder::new()
        .cluster_with_gpu("h100-ib", 2, NicType::InfiniBand, GpuProfile::h100_80g())
        .cluster_with_gpu("a100-roce", 2, NicType::RoCE, GpuProfile::a100_80g())
        .cluster_with_gpu("v100-ib", 2, NicType::InfiniBand, GpuProfile::v100_32g())
        .build()
        .expect("non-empty gen-mix topology")
}

/// Two clusters with the *same* NIC technology but different accelerator
/// generations (2 H100 nodes + 2 A100 nodes, both InfiniBand, 32 GPUs):
/// the NIC environment is symmetric, so any partition difference against
/// the uniform Eq. 2 baseline is attributable purely to compute skew.
pub fn gen_split_2c() -> Topology {
    TopologyBuilder::new()
        .cluster_with_gpu("h100-ib", 2, NicType::InfiniBand, GpuProfile::h100_80g())
        .cluster_with_gpu("a100-ib", 2, NicType::InfiniBand, GpuProfile::a100_80g())
        .build()
        .expect("non-empty gen-split topology")
}

/// An H2-style hyper-heterogeneous fleet: `count` clusters of
/// `nodes_per_cluster` nodes, cycling three accelerator generations
/// (H100 / A100 / V100) against the four NIC speed classes of
/// [`synthetic_fleet`]. With `count ≥ 12` all twelve generation × NIC
/// structural classes appear, exercising the guided planner's symmetry
/// pruning under compute skew.
pub fn fleet_hetero(count: u32, nodes_per_cluster: u32) -> Topology {
    let gens: [(&str, GpuProfile); 3] = [
        ("h100", GpuProfile::h100_80g()),
        ("a100", GpuProfile::a100_80g()),
        ("v100", GpuProfile::v100_32g()),
    ];
    let nics: [(&str, NicProfile); 4] = [
        ("ib200", NicProfile::infiniband_200g()),
        (
            "ib100",
            NicProfile {
                bandwidth_gbps: 100.0,
                ..NicProfile::infiniband_200g()
            },
        ),
        ("roce200", NicProfile::roce_200g()),
        (
            "roce100",
            NicProfile {
                bandwidth_gbps: 100.0,
                ..NicProfile::roce_200g()
            },
        ),
    ];
    let mut builder = TopologyBuilder::new();
    for i in 0..count {
        let (gen_name, gpu) = &gens[(i % 3) as usize];
        let (nic_name, profile) = &nics[(i % 4) as usize];
        let mut cluster = crate::cluster::Cluster {
            name: format!("fleet-{gen_name}-{nic_name}-{i}"),
            nodes: (0..nodes_per_cluster)
                .map(|_| crate::cluster::Node::standard(*profile))
                .collect(),
            has_switch: true,
            oversubscription: 1.0,
        };
        for node in &mut cluster.nodes {
            node.gpu = gpu.clone();
        }
        builder = builder.custom_cluster(cluster);
    }
    builder.build().expect("non-empty hetero fleet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_sizes() {
        for n in [4, 6, 8] {
            let topo = homogeneous(NicType::InfiniBand, n);
            assert_eq!(topo.node_count(), n);
            assert_eq!(topo.device_count(), n * 8);
            assert!(topo.is_homogeneous());
        }
    }

    #[test]
    fn hybrid_has_two_clusters_and_both_rdma_types() {
        let topo = hybrid_two_cluster(2);
        assert_eq!(topo.cluster_count(), 2);
        assert_eq!(topo.device_count(), 32);
        assert_eq!(
            topo.nic_types_present(),
            vec![NicType::InfiniBand, NicType::RoCE]
        );
    }

    #[test]
    fn same_nic_two_clusters_is_not_homogeneous_case1() {
        // Same NIC type everywhere but two clusters → cross-cluster pairs
        // must fall back to TCP (this is exactly Figure 4's setting).
        use crate::link::LinkKind;
        use crate::topology::Rank;
        let topo = same_nic_two_clusters(NicType::InfiniBand, 2);
        assert!(!topo.is_homogeneous());
        let cross = topo.link_between(Rank(0), Rank(16)).unwrap();
        assert_eq!(cross.kind, LinkKind::Tcp);
        let within = topo.link_between(Rank(0), Rank(8)).unwrap();
        assert_eq!(within.kind, LinkKind::Rdma(NicType::InfiniBand));
    }

    #[test]
    fn table4_presets_match_paper_columns() {
        assert_eq!(table4_2r_2r_2ib().node_count(), 6);
        assert_eq!(table4_2r_2ib_2ib().node_count(), 6);
        assert_eq!(table4_4r_4ib_4ib().node_count(), 12);
        assert_eq!(table4_4r_4ib_4ib().device_count(), 96);
        assert_eq!(table4_2r_2r_2ib().cluster_count(), 3);
    }

    #[test]
    fn hybrid_split_supports_unequal_clusters() {
        let topo = hybrid_split(3, 1);
        assert_eq!(topo.cluster_count(), 2);
        assert_eq!(topo.clusters()[0].nodes.len(), 3);
        assert_eq!(topo.clusters()[1].nodes.len(), 1);
    }

    #[test]
    fn gen_mix_3c_mixes_generations_and_nics() {
        let topo = gen_mix_3c();
        assert_eq!(topo.cluster_count(), 3);
        assert_eq!(topo.device_count(), 48);
        assert!(!topo.uniform_compute());
        assert_eq!(
            topo.gpu_generations(),
            vec!["NVIDIA H100-80GB", "NVIDIA A100-80GB", "NVIDIA V100-32GB"]
        );
        assert_eq!(
            topo.nic_types_present(),
            vec![NicType::InfiniBand, NicType::RoCE]
        );
    }

    #[test]
    fn gen_split_2c_isolates_compute_skew() {
        let topo = gen_split_2c();
        assert_eq!(topo.cluster_count(), 2);
        assert_eq!(topo.device_count(), 32);
        assert!(!topo.uniform_compute());
        // Same NIC class everywhere: only the accelerator generation skews.
        assert_eq!(topo.nic_types_present(), vec![NicType::InfiniBand]);
        assert_eq!(topo.gpu_generations().len(), 2);
    }

    #[test]
    fn fleet_hetero_cycles_three_generations() {
        let topo = fleet_hetero(12, 2);
        assert_eq!(topo.cluster_count(), 12);
        assert_eq!(topo.device_count(), 192);
        assert!(!topo.uniform_compute());
        assert_eq!(topo.gpu_generations().len(), 3);
        // Generation cycles mod 3, NIC class mod 4.
        let gen = |i: usize| topo.clusters()[i].nodes[0].gpu.peak_tflops;
        let bw = |i: usize| topo.clusters()[i].nodes[0].nic.bandwidth_gbps;
        assert_eq!(gen(0), 989.0);
        assert_eq!(gen(1), 312.0);
        assert_eq!(gen(2), 125.0);
        assert_eq!(gen(3), gen(0));
        assert_eq!(bw(0), 200.0);
        assert_eq!(bw(1), 100.0);
        assert_eq!(bw(4), bw(0));
    }

    #[test]
    fn existing_presets_stay_compute_uniform() {
        assert!(homogeneous(NicType::InfiniBand, 4).uniform_compute());
        assert!(hybrid_two_cluster(2).uniform_compute());
        assert!(table4_2r_2ib_2ib().uniform_compute());
        assert!(synthetic_fleet(8, 2).uniform_compute());
    }

    #[test]
    fn synthetic_fleet_hits_issue7_scale() {
        let topo = synthetic_fleet(64, 2);
        assert_eq!(topo.cluster_count(), 64);
        assert_eq!(topo.node_count(), 128);
        assert_eq!(topo.device_count(), 1024);
        assert!(!topo.is_homogeneous());
        // Four NIC speed classes, 16 clusters each, cycling by index.
        let bw = |i: usize| topo.clusters()[i].nodes[0].nic.bandwidth_gbps;
        assert_eq!(bw(0), 200.0);
        assert_eq!(bw(1), 100.0);
        assert_eq!(bw(4), bw(0));
        assert_eq!(bw(5), bw(1));
    }
}
