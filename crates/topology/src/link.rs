//! Effective transports between pairs of devices.

use crate::nic::NicType;

/// The transport technology resolved for a device pair.
///
/// Resolution rules (paper §2.2 / §3.1):
///
/// * same node → [`LinkKind::NvLink`] (or [`LinkKind::PciE`] on nodes
///   without NVLink);
/// * same cluster, both NICs the same RDMA technology → [`LinkKind::Rdma`];
/// * everything else (cross-cluster, or mixed IB/RoCE) → [`LinkKind::Tcp`]
///   over plain Ethernet, because InfiniBand and RoCE are incompatible and
///   clusters in the paper's Case 2 lack high-speed interconnects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Intra-node NVLink / NVSwitch.
    NvLink,
    /// Intra-node PCI-E (fallback when NVLink is absent).
    PciE,
    /// Inter-node RDMA over the given NIC technology.
    Rdma(NicType),
    /// Inter-node TCP over Ethernet.
    Tcp,
}

impl LinkKind {
    /// True for intra-node transports.
    #[inline]
    pub fn is_intra_node(self) -> bool {
        matches!(self, LinkKind::NvLink | LinkKind::PciE)
    }

    /// True when the transport uses RDMA semantics.
    #[inline]
    pub fn is_rdma(self) -> bool {
        matches!(self, LinkKind::Rdma(_))
    }
}

/// A resolved transport with its performance characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Transport technology.
    pub kind: LinkKind,
    /// Effective point-to-point bandwidth in bytes per second (already
    /// discounted by protocol efficiency).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way latency in nanoseconds.
    pub latency_ns: u64,
}

impl LinkProfile {
    /// NVLink 3 (A100 generation): 600 GB/s bidirectional per GPU through
    /// NVSwitch; we model ~250 GB/s effective unidirectional per flow.
    pub fn nvlink() -> Self {
        LinkProfile {
            kind: LinkKind::NvLink,
            bandwidth_bytes_per_sec: 250e9,
            latency_ns: 700,
        }
    }

    /// PCI-E 4.0 x16: ~32 GB/s raw, ~25 GB/s effective.
    pub fn pcie4() -> Self {
        LinkProfile {
            kind: LinkKind::PciE,
            bandwidth_bytes_per_sec: 25e9,
            latency_ns: 1_500,
        }
    }

    /// Wall-clock seconds to move `bytes` over this link, unloaded.
    #[inline]
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_ns as f64 * 1e-9 + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_node_classification() {
        assert!(LinkKind::NvLink.is_intra_node());
        assert!(LinkKind::PciE.is_intra_node());
        assert!(!LinkKind::Rdma(NicType::InfiniBand).is_intra_node());
        assert!(!LinkKind::Tcp.is_intra_node());
    }

    #[test]
    fn rdma_classification() {
        assert!(LinkKind::Rdma(NicType::RoCE).is_rdma());
        assert!(!LinkKind::Tcp.is_rdma());
        assert!(!LinkKind::NvLink.is_rdma());
    }

    #[test]
    fn nvlink_is_faster_than_pcie() {
        assert!(
            LinkProfile::nvlink().bandwidth_bytes_per_sec
                > LinkProfile::pcie4().bandwidth_bytes_per_sec
        );
    }

    #[test]
    fn transfer_time_includes_latency() {
        let link = LinkProfile {
            kind: LinkKind::Tcp,
            bandwidth_bytes_per_sec: 1e9,
            latency_ns: 1_000_000, // 1 ms
        };
        let t = link.transfer_seconds(1_000_000_000);
        assert!((t - 1.001).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_transfer_costs_only_latency() {
        let link = LinkProfile::nvlink();
        assert!((link.transfer_seconds(0) - 700e-9).abs() < 1e-15);
    }
}
