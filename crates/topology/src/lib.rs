//! # holmes-topology
//!
//! Hardware-topology substrate for the Holmes reproduction.
//!
//! The Holmes paper (ICPP 2024) schedules LLM-training tasklets onto GPU
//! devices according to the *network interface cards* those devices sit
//! behind. This crate models everything the scheduler needs to know about
//! the physical world:
//!
//! * [`NicType`] / [`NicProfile`] — InfiniBand, RoCE and Ethernet NICs with
//!   bandwidth, latency and protocol-efficiency characteristics, plus the
//!   RDMA compatibility rules (IB↔IB and RoCE↔RoCE can use RDMA; any other
//!   pairing falls back to TCP over Ethernet).
//! * [`GpuProfile`] — an accelerator's peak throughput and memory.
//! * [`LinkProfile`] — the effective transport between two devices
//!   (NVLink, PCI-E, RDMA, or TCP) with an effective-bandwidth model.
//! * [`Node`], [`Cluster`], [`Topology`] — the paper's `C = {c_1 … c_M}`
//!   hierarchy with the exact global rank numbering of §2.4.
//! * [`TopologyBuilder`] and [`presets`] — fluent construction plus the
//!   concrete machine environments used by every experiment in the paper.
//!
//! The topology is immutable once built; all queries are cheap, so
//! schedulers and the event-driven engine can call them in hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cluster;
mod error;
mod gpu;
mod link;
mod nic;
pub mod presets;
mod spec;
mod topology;

pub use builder::TopologyBuilder;
pub use cluster::{Cluster, ClusterId, Node, NodeId};
pub use error::TopologyError;
pub use gpu::GpuProfile;
pub use link::{LinkKind, LinkProfile};
pub use nic::{NicProfile, NicType};
pub use spec::parse_topology_spec;
pub use topology::{Device, DeviceCoord, Rank, Topology};
