//! The global topology: clusters, global rank numbering, link resolution.

use crate::cluster::{Cluster, ClusterId, NodeId};
use crate::error::TopologyError;
use crate::gpu::GpuProfile;
use crate::link::{LinkKind, LinkProfile};
use crate::nic::{NicProfile, NicType};

/// Global device index.
///
/// §2.4 numbers clusters, nodes and GPUs sequentially: in the `i`-th cluster,
/// the `j`-th GPU of the `k`-th node is
/// `rank_{G·((Σ_{a<i} f_a) + k − 1) + j}` (1-based in the paper). We store
/// 0-based ranks; [`Rank::paper_index`] recovers the paper's 1-based form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rank(pub u32);

impl Rank {
    /// The paper's 1-based rank index.
    #[inline]
    pub fn paper_index(self) -> u32 {
        self.0 + 1
    }

    /// Construct from the paper's 1-based index.
    #[inline]
    pub fn from_paper_index(idx: u32) -> Self {
        debug_assert!(idx >= 1, "paper ranks are 1-based");
        Rank(idx - 1)
    }
}

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Physical coordinates of a device: (cluster, node-within-cluster,
/// gpu-within-node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceCoord {
    /// Cluster index.
    pub cluster: ClusterId,
    /// Node index within the cluster.
    pub node: NodeId,
    /// GPU index within the node.
    pub gpu: u32,
}

/// Resolved information about one device.
#[derive(Debug, Clone, Copy)]
pub struct Device<'t> {
    /// Global rank.
    pub rank: Rank,
    /// Physical coordinates.
    pub coord: DeviceCoord,
    /// GPU profile.
    pub gpu: &'t GpuProfile,
    /// High-speed NIC of the hosting node.
    pub nic: &'t NicProfile,
    /// NIC technology shorthand.
    pub nic_type: NicType,
}

/// An immutable multi-cluster GPU topology.
///
/// Construction goes through [`crate::TopologyBuilder`] or the presets; the
/// struct itself only offers queries.
#[derive(Debug, Clone)]
pub struct Topology {
    clusters: Vec<Cluster>,
    /// Ethernet profile used for all inter-cluster traffic.
    inter_cluster: NicProfile,
    /// coords[rank] = physical coordinates, precomputed at build time.
    coords: Vec<DeviceCoord>,
    /// Per-node GPU count `G` (uniform across the topology, §2.4).
    gpus_per_node: u32,
}

impl Topology {
    /// Build a topology from clusters. Fails when empty or when nodes have
    /// uneven GPU counts (the paper's formalization assumes a uniform `G`).
    pub fn new(clusters: Vec<Cluster>, inter_cluster: NicProfile) -> Result<Self, TopologyError> {
        let first = clusters
            .iter()
            .flat_map(|c| c.nodes.first())
            .next()
            .ok_or(TopologyError::Empty)?;
        let g = first.gpu_count;
        if g == 0 {
            return Err(TopologyError::NodeWithoutGpus);
        }
        let mut coords = Vec::new();
        for (ci, cluster) in clusters.iter().enumerate() {
            for (ni, node) in cluster.nodes.iter().enumerate() {
                if node.gpu_count == 0 {
                    return Err(TopologyError::NodeWithoutGpus);
                }
                if node.gpu_count != g {
                    return Err(TopologyError::UnevenGpuCounts {
                        expected: g,
                        found: node.gpu_count,
                    });
                }
                for gi in 0..node.gpu_count {
                    coords.push(DeviceCoord {
                        cluster: ClusterId(ci as u32),
                        node: NodeId(ni as u32),
                        gpu: gi,
                    });
                }
            }
        }
        if coords.is_empty() {
            return Err(TopologyError::Empty);
        }
        Ok(Topology {
            clusters,
            inter_cluster,
            coords,
            gpus_per_node: g,
        })
    }

    /// Total device count `N = G · Σ f_i`.
    #[inline]
    pub fn device_count(&self) -> u32 {
        self.coords.len() as u32
    }

    /// Per-node GPU count `G`.
    #[inline]
    pub fn gpus_per_node(&self) -> u32 {
        self.gpus_per_node
    }

    /// Number of clusters `M`.
    #[inline]
    pub fn cluster_count(&self) -> u32 {
        self.clusters.len() as u32
    }

    /// Total node count `Σ f_i`.
    pub fn node_count(&self) -> u32 {
        self.clusters.iter().map(|c| c.nodes.len() as u32).sum()
    }

    /// All clusters.
    #[inline]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The Ethernet profile used between clusters.
    #[inline]
    pub fn inter_cluster_profile(&self) -> &NicProfile {
        &self.inter_cluster
    }

    /// Physical coordinates of a rank.
    pub fn coord(&self, rank: Rank) -> Result<DeviceCoord, TopologyError> {
        self.coords
            .get(rank.0 as usize)
            .copied()
            .ok_or(TopologyError::RankOutOfRange {
                rank: rank.0,
                total: self.device_count(),
            })
    }

    /// Inverse of [`Topology::coord`].
    pub fn rank_of(&self, coord: DeviceCoord) -> Option<Rank> {
        let mut base = 0u32;
        for (ci, cluster) in self.clusters.iter().enumerate() {
            if ci as u32 == coord.cluster.0 {
                let node = cluster.nodes.get(coord.node.0 as usize)?;
                if coord.gpu >= node.gpu_count {
                    return None;
                }
                return Some(Rank(base + coord.node.0 * self.gpus_per_node + coord.gpu));
            }
            base += cluster.gpu_count();
        }
        None
    }

    /// Resolved device info for a rank.
    pub fn device(&self, rank: Rank) -> Result<Device<'_>, TopologyError> {
        let coord = self.coord(rank)?;
        let node = &self.clusters[coord.cluster.0 as usize].nodes[coord.node.0 as usize];
        Ok(Device {
            rank,
            coord,
            gpu: &node.gpu,
            nic: &node.nic,
            nic_type: node.nic.nic_type,
        })
    }

    /// Iterate over all devices in rank order.
    pub fn devices(&self) -> impl Iterator<Item = Device<'_>> + '_ {
        (0..self.device_count()).map(move |r| self.device(Rank(r)).expect("rank in range"))
    }

    /// NIC technology of the node hosting `rank`.
    pub fn nic_type_of(&self, rank: Rank) -> Result<NicType, TopologyError> {
        Ok(self.device(rank)?.nic_type)
    }

    /// Global ranks hosted by a cluster, in order.
    pub fn cluster_ranks(&self, cluster: ClusterId) -> Vec<Rank> {
        let mut base = 0u32;
        for (ci, c) in self.clusters.iter().enumerate() {
            let count = c.gpu_count();
            if ci as u32 == cluster.0 {
                return (base..base + count).map(Rank).collect();
            }
            base += count;
        }
        Vec::new()
    }

    /// Resolve the best transport between two distinct devices.
    ///
    /// * same node → the node's intra-node link (NVLink);
    /// * same cluster with a switch, RDMA-compatible NICs → RDMA at the
    ///   slower endpoint's effective per-port rate;
    /// * same cluster, incompatible NICs (or no switch) → TCP over the
    ///   nodes' Ethernet fallback;
    /// * different clusters → TCP over the inter-cluster Ethernet.
    pub fn link_between(&self, a: Rank, b: Rank) -> Result<LinkProfile, TopologyError> {
        let ca = self.coord(a)?;
        let cb = self.coord(b)?;
        let node_a = &self.clusters[ca.cluster.0 as usize].nodes[ca.node.0 as usize];
        let node_b = &self.clusters[cb.cluster.0 as usize].nodes[cb.node.0 as usize];

        if ca.cluster == cb.cluster && ca.node == cb.node {
            return Ok(node_a.intra_link);
        }

        if ca.cluster == cb.cluster {
            let cluster = &self.clusters[ca.cluster.0 as usize];
            if cluster.has_switch && node_a.nic.nic_type.rdma_compatible(node_b.nic.nic_type) {
                // RDMA path; the slower endpoint's NIC bounds the flow.
                let (slow, fast);
                if node_a.nic.effective_bytes_per_sec() <= node_b.nic.effective_bytes_per_sec() {
                    (slow, fast) = (&node_a.nic, &node_b.nic);
                } else {
                    (slow, fast) = (&node_b.nic, &node_a.nic);
                }
                return Ok(LinkProfile {
                    kind: LinkKind::Rdma(slow.nic_type),
                    bandwidth_bytes_per_sec: slow.effective_bytes_per_sec(),
                    latency_ns: slow.latency_ns().max(fast.latency_ns()),
                });
            }
            // Incompatible NICs inside one cluster: only Ethernet works.
            let eth = if node_a.ethernet.effective_bytes_per_sec()
                <= node_b.ethernet.effective_bytes_per_sec()
            {
                &node_a.ethernet
            } else {
                &node_b.ethernet
            };
            return Ok(LinkProfile {
                kind: LinkKind::Tcp,
                bandwidth_bytes_per_sec: eth.effective_bytes_per_sec(),
                latency_ns: eth.latency_ns(),
            });
        }

        // Cross-cluster: plain Ethernet, possibly long-haul.
        Ok(LinkProfile {
            kind: LinkKind::Tcp,
            bandwidth_bytes_per_sec: self.inter_cluster.effective_bytes_per_sec(),
            latency_ns: self.inter_cluster.latency_ns(),
        })
    }

    /// Resolve the transport between two distinct devices with RDMA
    /// *excluded* — the path traffic takes after a NIC failure forces the
    /// pair down to TCP. Same-node pairs still ride NVLink (a NIC loss
    /// does not affect the intra-node fabric); everything else rides the
    /// Ethernet fallback exactly as [`Topology::link_between`] prices it
    /// for RDMA-incompatible pairs.
    pub fn tcp_link_between(&self, a: Rank, b: Rank) -> Result<LinkProfile, TopologyError> {
        let ca = self.coord(a)?;
        let cb = self.coord(b)?;
        let node_a = &self.clusters[ca.cluster.0 as usize].nodes[ca.node.0 as usize];
        let node_b = &self.clusters[cb.cluster.0 as usize].nodes[cb.node.0 as usize];

        if ca.cluster == cb.cluster && ca.node == cb.node {
            return Ok(node_a.intra_link);
        }
        if ca.cluster == cb.cluster {
            let eth = if node_a.ethernet.effective_bytes_per_sec()
                <= node_b.ethernet.effective_bytes_per_sec()
            {
                &node_a.ethernet
            } else {
                &node_b.ethernet
            };
            return Ok(LinkProfile {
                kind: LinkKind::Tcp,
                bandwidth_bytes_per_sec: eth.effective_bytes_per_sec(),
                latency_ns: eth.latency_ns(),
            });
        }
        Ok(LinkProfile {
            kind: LinkKind::Tcp,
            bandwidth_bytes_per_sec: self.inter_cluster.effective_bytes_per_sec(),
            latency_ns: self.inter_cluster.latency_ns(),
        })
    }

    /// True when every device in the topology sits behind the same NIC
    /// technology and a single cluster — the paper's "homogeneous" Case 1.
    pub fn is_homogeneous(&self) -> bool {
        if self.clusters.len() != 1 {
            return false;
        }
        self.clusters[0].uniform_nic_type().is_some()
    }

    /// True when every node carries the same [`GpuProfile`] — the fleet is
    /// compute-uniform and per-device rate modelling degenerates to a single
    /// FLOPs rate. Heterogeneous-*compute* planning (straggler-aware
    /// partitioning, skew-priced DP groups) only activates when this is
    /// false, so compute-uniform topologies keep their historical plans
    /// bit-for-bit.
    pub fn uniform_compute(&self) -> bool {
        let mut nodes = self.clusters.iter().flat_map(|c| &c.nodes);
        match nodes.next() {
            Some(first) => nodes.all(|n| n.gpu == first.gpu),
            None => true,
        }
    }

    /// The set of distinct GPU profile names present, ordered by first
    /// appearance in rank order (deduplicated). One entry ⇔
    /// [`Topology::uniform_compute`].
    pub fn gpu_generations(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for node in self.clusters.iter().flat_map(|c| &c.nodes) {
            if !seen.contains(&node.gpu.name.as_str()) {
                seen.push(&node.gpu.name);
            }
        }
        seen
    }

    /// The set of distinct NIC technologies present, in `NicType::ALL` order.
    pub fn nic_types_present(&self) -> Vec<NicType> {
        NicType::ALL
            .into_iter()
            .filter(|t| {
                self.clusters
                    .iter()
                    .flat_map(|c| &c.nodes)
                    .any(|n| n.nic_type() == *t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;

    fn two_cluster_topo() -> Topology {
        // Figure 2 of the paper: 2 clusters × 2 nodes × 4 GPUs; cluster 0
        // uses InfiniBand, cluster 1 uses RoCE, Ethernet between them.
        TopologyBuilder::new()
            .cluster("ib", 2, NicType::InfiniBand)
            .cluster("roce", 2, NicType::RoCE)
            .gpus_per_node(4)
            .build()
            .unwrap()
    }

    #[test]
    fn rank_numbering_matches_paper_formula() {
        let topo = two_cluster_topo();
        // Paper: rank_{G((Σ_{a<i} f_a)+k−1)+j}, 1-based. Cluster 2 (i=2),
        // node 1 (k=1), gpu 2 (j=2), G=4, f_1=2 → rank_{4·(2+0)+2} = rank_10
        // → 0-based 9.
        let coord = DeviceCoord {
            cluster: ClusterId(1),
            node: NodeId(0),
            gpu: 1,
        };
        let rank = topo.rank_of(coord).unwrap();
        assert_eq!(rank.paper_index(), 10);
        assert_eq!(topo.coord(rank).unwrap(), coord);
    }

    #[test]
    fn coord_rank_roundtrip_for_all_devices() {
        let topo = two_cluster_topo();
        assert_eq!(topo.device_count(), 16);
        for r in 0..16 {
            let rank = Rank(r);
            let coord = topo.coord(rank).unwrap();
            assert_eq!(topo.rank_of(coord), Some(rank));
        }
    }

    #[test]
    fn same_node_link_is_nvlink() {
        let topo = two_cluster_topo();
        let link = topo.link_between(Rank(0), Rank(3)).unwrap();
        assert_eq!(link.kind, LinkKind::NvLink);
    }

    #[test]
    fn same_cluster_same_nic_is_rdma() {
        let topo = two_cluster_topo();
        // ranks 0..4 node0, 4..8 node1, both InfiniBand cluster 0.
        let link = topo.link_between(Rank(0), Rank(4)).unwrap();
        assert_eq!(link.kind, LinkKind::Rdma(NicType::InfiniBand));
        // RoCE cluster: ranks 8..12 node0, 12..16 node1.
        let link = topo.link_between(Rank(8), Rank(12)).unwrap();
        assert_eq!(link.kind, LinkKind::Rdma(NicType::RoCE));
    }

    #[test]
    fn cross_cluster_link_is_tcp() {
        let topo = two_cluster_topo();
        let link = topo.link_between(Rank(0), Rank(8)).unwrap();
        assert_eq!(link.kind, LinkKind::Tcp);
        // TCP is far slower than RDMA here.
        let rdma = topo.link_between(Rank(0), Rank(4)).unwrap();
        assert!(link.bandwidth_bytes_per_sec < rdma.bandwidth_bytes_per_sec);
    }

    #[test]
    fn mixed_nic_inside_cluster_falls_back_to_tcp() {
        use crate::cluster::{Cluster, Node};
        let mut cluster = Cluster::homogeneous("mixed", 1, NicType::InfiniBand);
        cluster.nodes.push(Node::standard(NicProfile::roce_200g()));
        let topo = Topology::new(vec![cluster], NicProfile::ethernet_25g()).unwrap();
        let link = topo.link_between(Rank(0), Rank(8)).unwrap();
        assert_eq!(link.kind, LinkKind::Tcp);
    }

    #[test]
    fn cluster_without_switch_cannot_use_rdma() {
        use crate::cluster::Cluster;
        let mut cluster = Cluster::homogeneous("switchless", 2, NicType::InfiniBand);
        cluster.has_switch = false;
        let topo = Topology::new(vec![cluster], NicProfile::ethernet_25g()).unwrap();
        let link = topo.link_between(Rank(0), Rank(8)).unwrap();
        assert_eq!(link.kind, LinkKind::Tcp);
    }

    #[test]
    fn homogeneity_detection() {
        let topo = two_cluster_topo();
        assert!(!topo.is_homogeneous());
        let homo = TopologyBuilder::new()
            .cluster("ib", 4, NicType::InfiniBand)
            .build()
            .unwrap();
        assert!(homo.is_homogeneous());
    }

    #[test]
    fn nic_types_present_ordering() {
        let topo = two_cluster_topo();
        assert_eq!(
            topo.nic_types_present(),
            vec![NicType::InfiniBand, NicType::RoCE]
        );
    }

    #[test]
    fn cluster_ranks_are_contiguous() {
        let topo = two_cluster_topo();
        let c0: Vec<u32> = topo
            .cluster_ranks(ClusterId(0))
            .iter()
            .map(|r| r.0)
            .collect();
        let c1: Vec<u32> = topo
            .cluster_ranks(ClusterId(1))
            .iter()
            .map(|r| r.0)
            .collect();
        assert_eq!(c0, (0..8).collect::<Vec<_>>());
        assert_eq!(c1, (8..16).collect::<Vec<_>>());
        assert!(topo.cluster_ranks(ClusterId(5)).is_empty());
    }

    #[test]
    fn out_of_range_rank_is_an_error() {
        let topo = two_cluster_topo();
        assert!(matches!(
            topo.coord(Rank(99)),
            Err(TopologyError::RankOutOfRange {
                rank: 99,
                total: 16
            })
        ));
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(matches!(
            Topology::new(vec![], NicProfile::ethernet_25g()),
            Err(TopologyError::Empty)
        ));
    }

    #[test]
    fn uneven_gpu_counts_rejected() {
        use crate::cluster::{Cluster, Node};
        let mut cluster = Cluster::homogeneous("c", 1, NicType::InfiniBand);
        let mut odd = Node::standard(NicProfile::infiniband_200g());
        odd.gpu_count = 4;
        cluster.nodes.push(odd);
        assert!(matches!(
            Topology::new(vec![cluster], NicProfile::ethernet_25g()),
            Err(TopologyError::UnevenGpuCounts {
                expected: 8,
                found: 4
            })
        ));
    }
}
