//! Nodes and clusters: the `C = {c_1 … c_M}` hierarchy of §2.4.

use crate::gpu::GpuProfile;
use crate::link::LinkProfile;
use crate::nic::{NicProfile, NicType};

/// Index of a cluster within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

/// Index of a node within its cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One server: `G` GPUs behind a NIC, connected internally by NVLink/PCI-E.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// GPUs on this node (the paper uses 8× A100 per node).
    pub gpu_count: u32,
    /// Profile shared by all GPUs on the node.
    pub gpu: GpuProfile,
    /// The high-speed NIC this node's GPUs communicate through.
    pub nic: NicProfile,
    /// Fallback Ethernet NIC, always present (management / TCP path used
    /// when RDMA is impossible).
    pub ethernet: NicProfile,
    /// Intra-node GPU-to-GPU transport.
    pub intra_link: LinkProfile,
}

impl Node {
    /// A paper-standard node: 8× A100-80GB behind the given NIC, NVLink
    /// internally, with a reference 25 Gb/s Ethernet fallback.
    pub fn standard(nic: NicProfile) -> Self {
        Node {
            gpu_count: 8,
            gpu: GpuProfile::a100_80g(),
            nic,
            ethernet: NicProfile::ethernet_25g(),
            intra_link: LinkProfile::nvlink(),
        }
    }

    /// NIC technology of this node's high-speed NIC.
    #[inline]
    pub fn nic_type(&self) -> NicType {
        self.nic.nic_type
    }
}

/// A cluster: a set of nodes that share a high-speed switch.
///
/// Within a cluster, nodes whose NICs are RDMA-compatible can use RDMA.
/// Between clusters there is never a high-speed interconnect in the paper's
/// Case 2 — only Ethernet.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Human-readable name (shown in reports).
    pub name: String,
    /// Nodes in this cluster, in rank order.
    pub nodes: Vec<Node>,
    /// Whether the cluster has a high-speed switch. Without one, even
    /// same-technology RDMA NICs cannot reach each other and all inter-node
    /// traffic falls back to Ethernet.
    pub has_switch: bool,
    /// Switch oversubscription ratio (≥ 1.0): the fabric's bisection
    /// bandwidth is `Σ node uplinks / oversubscription`. 1.0 models a
    /// full-bisection (non-blocking) fabric; 2.0 a typical 2:1
    /// leaf–spine taper.
    pub oversubscription: f64,
}

impl Cluster {
    /// A cluster of `node_count` identical standard nodes behind one switch.
    pub fn homogeneous(name: impl Into<String>, node_count: u32, nic_type: NicType) -> Self {
        let nic = NicProfile::reference(nic_type);
        Cluster {
            name: name.into(),
            nodes: (0..node_count).map(|_| Node::standard(nic)).collect(),
            has_switch: true,
            oversubscription: 1.0,
        }
    }

    /// Aggregate RDMA bisection bandwidth of this cluster's switch in
    /// bytes/second (`Σ node uplinks / oversubscription`).
    pub fn switch_bisection_bytes_per_sec(&self) -> f64 {
        let total: f64 = self
            .nodes
            .iter()
            .map(|n| n.nic.node_uplink_bytes_per_sec())
            .sum();
        total / self.oversubscription.max(1.0)
    }

    /// Total GPU count in this cluster.
    pub fn gpu_count(&self) -> u32 {
        self.nodes.iter().map(|n| n.gpu_count).sum()
    }

    /// The single NIC technology of this cluster, if homogeneous.
    pub fn uniform_nic_type(&self) -> Option<NicType> {
        let first = self.nodes.first()?.nic_type();
        self.nodes
            .iter()
            .all(|n| n.nic_type() == first)
            .then_some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_node_matches_paper_hardware() {
        let node = Node::standard(NicProfile::infiniband_200g());
        assert_eq!(node.gpu_count, 8);
        assert_eq!(node.gpu.peak_tflops, 312.0);
        assert_eq!(node.nic_type(), NicType::InfiniBand);
    }

    #[test]
    fn homogeneous_cluster_counts() {
        let c = Cluster::homogeneous("a", 4, NicType::RoCE);
        assert_eq!(c.nodes.len(), 4);
        assert_eq!(c.gpu_count(), 32);
        assert_eq!(c.uniform_nic_type(), Some(NicType::RoCE));
        assert!(c.has_switch);
    }

    #[test]
    fn oversubscription_divides_bisection() {
        let mut c = Cluster::homogeneous("a", 4, NicType::InfiniBand);
        let full = c.switch_bisection_bytes_per_sec();
        c.oversubscription = 2.0;
        assert!((c.switch_bisection_bytes_per_sec() - full / 2.0).abs() < 1.0);
        // Ratios below 1 clamp to non-blocking.
        c.oversubscription = 0.5;
        assert_eq!(c.switch_bisection_bytes_per_sec(), full);
    }

    #[test]
    fn mixed_cluster_has_no_uniform_nic() {
        let mut c = Cluster::homogeneous("a", 2, NicType::RoCE);
        c.nodes.push(Node::standard(NicProfile::infiniband_200g()));
        assert_eq!(c.uniform_nic_type(), None);
    }

    #[test]
    fn empty_cluster_has_no_uniform_nic() {
        let c = Cluster {
            name: "empty".into(),
            nodes: vec![],
            has_switch: true,
            oversubscription: 1.0,
        };
        assert_eq!(c.uniform_nic_type(), None);
        assert_eq!(c.gpu_count(), 0);
    }
}
