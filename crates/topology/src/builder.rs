//! Fluent construction of [`Topology`] values.

use crate::cluster::{Cluster, Node};
use crate::error::TopologyError;
use crate::gpu::GpuProfile;
use crate::link::LinkProfile;
use crate::nic::{NicProfile, NicType};
use crate::topology::Topology;

/// Builder for [`Topology`].
///
/// ```
/// use holmes_topology::{TopologyBuilder, NicType};
///
/// let topo = TopologyBuilder::new()
///     .cluster("ib-cluster", 2, NicType::InfiniBand)
///     .cluster("roce-cluster", 2, NicType::RoCE)
///     .gpus_per_node(4)
///     .build()
///     .unwrap();
/// assert_eq!(topo.device_count(), 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    clusters: Vec<Cluster>,
    gpus_per_node: Option<u32>,
    gpu: Option<GpuProfile>,
    intra_link: Option<LinkProfile>,
    inter_cluster: Option<NicProfile>,
    node_ethernet: Option<NicProfile>,
}

impl TopologyBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a homogeneous cluster of `node_count` standard nodes behind a
    /// switch, using the reference profile for `nic_type`.
    pub fn cluster(mut self, name: impl Into<String>, node_count: u32, nic_type: NicType) -> Self {
        self.clusters
            .push(Cluster::homogeneous(name, node_count, nic_type));
        self
    }

    /// Append a cluster with a custom NIC profile.
    pub fn cluster_with_profile(
        mut self,
        name: impl Into<String>,
        node_count: u32,
        nic: NicProfile,
    ) -> Self {
        self.clusters.push(Cluster {
            name: name.into(),
            nodes: (0..node_count).map(|_| Node::standard(nic)).collect(),
            has_switch: true,
            oversubscription: 1.0,
        });
        self
    }

    /// Append a homogeneous cluster whose nodes carry a non-default GPU
    /// generation (hyper-heterogeneous fleets mix accelerator generations
    /// across clusters while each cluster stays internally uniform).
    pub fn cluster_with_gpu(
        mut self,
        name: impl Into<String>,
        node_count: u32,
        nic_type: NicType,
        gpu: GpuProfile,
    ) -> Self {
        let mut cluster = Cluster::homogeneous(name, node_count, nic_type);
        for node in &mut cluster.nodes {
            node.gpu = gpu.clone();
        }
        self.clusters.push(cluster);
        self
    }

    /// Set the switch oversubscription ratio on the most recently added
    /// cluster (≥ 1.0; see [`Cluster::oversubscription`]).
    ///
    /// # Panics
    /// Panics when no cluster has been added yet.
    pub fn oversubscription(mut self, ratio: f64) -> Self {
        self.clusters
            .last_mut()
            .expect("add a cluster before setting oversubscription")
            .oversubscription = ratio;
        self
    }

    /// Append a fully custom cluster.
    pub fn custom_cluster(mut self, cluster: Cluster) -> Self {
        self.clusters.push(cluster);
        self
    }

    /// Override the per-node GPU count for every node added so far and later.
    pub fn gpus_per_node(mut self, count: u32) -> Self {
        self.gpus_per_node = Some(count);
        self
    }

    /// Override the GPU profile on every node.
    pub fn gpu_profile(mut self, gpu: GpuProfile) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Override the intra-node link on every node.
    pub fn intra_node_link(mut self, link: LinkProfile) -> Self {
        self.intra_link = Some(link);
        self
    }

    /// Override the inter-cluster Ethernet profile (defaults to the
    /// reference 25 Gb/s profile).
    pub fn inter_cluster_ethernet(mut self, nic: NicProfile) -> Self {
        self.inter_cluster = Some(nic);
        self
    }

    /// Override the per-node fallback Ethernet NIC on every node.
    pub fn node_ethernet(mut self, nic: NicProfile) -> Self {
        self.node_ethernet = Some(nic);
        self
    }

    /// Finalize into an immutable [`Topology`].
    pub fn build(mut self) -> Result<Topology, TopologyError> {
        for cluster in &mut self.clusters {
            for node in &mut cluster.nodes {
                if let Some(g) = self.gpus_per_node {
                    node.gpu_count = g;
                }
                if let Some(gpu) = &self.gpu {
                    node.gpu = gpu.clone();
                }
                if let Some(link) = self.intra_link {
                    node.intra_link = link;
                }
                if let Some(eth) = self.node_ethernet {
                    node.ethernet = eth;
                }
            }
        }
        let inter = self.inter_cluster.unwrap_or_else(NicProfile::ethernet_25g);
        Topology::new(self.clusters, inter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_overrides_to_all_nodes() {
        let topo = TopologyBuilder::new()
            .cluster("a", 2, NicType::InfiniBand)
            .cluster("b", 1, NicType::RoCE)
            .gpus_per_node(2)
            .intra_node_link(LinkProfile::pcie4())
            .build()
            .unwrap();
        assert_eq!(topo.device_count(), 6);
        for cluster in topo.clusters() {
            for node in &cluster.nodes {
                assert_eq!(node.gpu_count, 2);
                assert_eq!(node.intra_link, LinkProfile::pcie4());
            }
        }
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(TopologyBuilder::new().build().is_err());
    }

    #[test]
    fn custom_inter_cluster_profile_is_used() {
        let slow = NicProfile {
            bandwidth_gbps: 1.0,
            ..NicProfile::ethernet_25g()
        };
        let topo = TopologyBuilder::new()
            .cluster("a", 1, NicType::InfiniBand)
            .cluster("b", 1, NicType::InfiniBand)
            .inter_cluster_ethernet(slow)
            .build()
            .unwrap();
        assert_eq!(topo.inter_cluster_profile().bandwidth_gbps, 1.0);
    }

    #[test]
    fn custom_cluster_is_preserved() {
        let mut c = Cluster::homogeneous("x", 1, NicType::Ethernet);
        c.has_switch = false;
        let topo = TopologyBuilder::new().custom_cluster(c).build().unwrap();
        assert!(!topo.clusters()[0].has_switch);
    }
}
