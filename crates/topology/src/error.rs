//! Error type for topology construction and queries.

use std::fmt;

/// Errors produced while building or querying a [`crate::Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A topology must contain at least one cluster with at least one node.
    Empty,
    /// Every node in a topology must have the same GPU count `G` (§2.4
    /// assumes a uniform per-node device count).
    UnevenGpuCounts {
        /// GPU count of the first node.
        expected: u32,
        /// Offending node's GPU count.
        found: u32,
    },
    /// A node declared zero GPUs.
    NodeWithoutGpus,
    /// A rank index was out of range.
    RankOutOfRange {
        /// The offending rank.
        rank: u32,
        /// Total number of devices.
        total: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology has no clusters or nodes"),
            TopologyError::UnevenGpuCounts { expected, found } => write!(
                f,
                "all nodes must have the same GPU count (expected {expected}, found {found})"
            ),
            TopologyError::NodeWithoutGpus => write!(f, "node declared zero GPUs"),
            TopologyError::RankOutOfRange { rank, total } => {
                write!(f, "rank {rank} out of range for {total} devices")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
