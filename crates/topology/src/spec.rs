//! A tiny textual topology specification, for CLIs and config files.
//!
//! Grammar (whitespace-free):
//!
//! ```text
//! spec     := cluster ( "+" cluster )*
//! cluster  := nic ":" nodes [ "x" gpus ]
//! nic      := "ib" | "infiniband" | "roce" | "eth" | "ethernet"
//! ```
//!
//! Examples: `ib:4`, `ib:4+roce:4`, `ib:2x4+roce:2x4+eth:1x8`.
//! Every cluster gets a high-speed switch; clusters are joined by the
//! reference inter-cluster Ethernet. All clusters must use the same
//! per-node GPU count (the §2.4 formalization requires a uniform `G`).

use crate::builder::TopologyBuilder;
use crate::nic::NicType;
use crate::topology::Topology;

/// Parse a topology spec string. See the module docs for the grammar.
///
/// ```
/// use holmes_topology::parse_topology_spec;
///
/// let topo = parse_topology_spec("ib:4+roce:4").unwrap();
/// assert_eq!(topo.cluster_count(), 2);
/// assert_eq!(topo.device_count(), 64);
/// ```
pub fn parse_topology_spec(spec: &str) -> Result<Topology, String> {
    if spec.trim().is_empty() {
        return Err("empty topology spec".to_owned());
    }
    let mut builder = TopologyBuilder::new();
    let mut gpus_per_node: Option<u32> = None;
    for (i, part) in spec.trim().split('+').enumerate() {
        let (nic_str, rest) = part
            .split_once(':')
            .ok_or_else(|| format!("cluster '{part}': expected nic:nodes[xgpus]"))?;
        let nic = match nic_str.to_ascii_lowercase().as_str() {
            "ib" | "infiniband" => NicType::InfiniBand,
            "roce" => NicType::RoCE,
            "eth" | "ethernet" => NicType::Ethernet,
            other => return Err(format!("unknown NIC '{other}' (ib|roce|eth)")),
        };
        let (nodes_str, gpus_str) = match rest.split_once('x') {
            Some((n, g)) => (n, Some(g)),
            None => (rest, None),
        };
        let nodes: u32 = nodes_str
            .parse()
            .map_err(|e| format!("cluster '{part}': bad node count: {e}"))?;
        if nodes == 0 {
            return Err(format!("cluster '{part}': node count must be positive"));
        }
        if let Some(g) = gpus_str {
            let g: u32 = g
                .parse()
                .map_err(|e| format!("cluster '{part}': bad GPU count: {e}"))?;
            if g == 0 {
                return Err(format!("cluster '{part}': GPU count must be positive"));
            }
            match gpus_per_node {
                None => gpus_per_node = Some(g),
                Some(prev) if prev != g => {
                    return Err(format!(
                        "all clusters must share one per-node GPU count ({prev} vs {g})"
                    ))
                }
                Some(_) => {}
            }
        }
        builder = builder.cluster(format!("{nic}-{i}"), nodes, nic);
    }
    if let Some(g) = gpus_per_node {
        builder = builder.gpus_per_node(g);
    }
    builder.build().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cluster() {
        let topo = parse_topology_spec("ib:4").unwrap();
        assert_eq!(topo.cluster_count(), 1);
        assert_eq!(topo.node_count(), 4);
        assert_eq!(topo.device_count(), 32);
        assert!(topo.is_homogeneous());
    }

    #[test]
    fn multi_cluster_with_gpu_counts() {
        let topo = parse_topology_spec("ib:2x4+roce:2x4").unwrap();
        assert_eq!(topo.cluster_count(), 2);
        assert_eq!(topo.gpus_per_node(), 4);
        assert_eq!(topo.device_count(), 16);
        assert_eq!(
            topo.nic_types_present(),
            vec![NicType::InfiniBand, NicType::RoCE]
        );
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        for spec in ["InfiniBand:1", "IB:1", "ib:1"] {
            assert_eq!(
                parse_topology_spec(spec).unwrap().nic_types_present(),
                vec![NicType::InfiniBand],
                "{spec}"
            );
        }
        assert_eq!(
            parse_topology_spec("ETHERNET:2")
                .unwrap()
                .nic_types_present(),
            vec![NicType::Ethernet]
        );
    }

    #[test]
    fn three_cluster_table4_spec() {
        let topo = parse_topology_spec("roce:4+ib:4+ib:4").unwrap();
        assert_eq!(topo.cluster_count(), 3);
        assert_eq!(topo.device_count(), 96);
    }

    #[test]
    fn malformed_specs_are_rejected_with_reasons() {
        for (spec, needle) in [
            ("", "empty"),
            ("ib", "expected nic"),
            ("token-ring:4", "unknown NIC"),
            ("ib:zero", "bad node count"),
            ("ib:0", "positive"),
            ("ib:2x0", "GPU count must be positive"),
            ("ib:2xfour", "bad GPU count"),
            ("ib:2x4+roce:2x8", "share one per-node GPU count"),
        ] {
            let err = parse_topology_spec(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn mixed_explicit_and_default_gpus() {
        // Only one cluster pins the GPU count; it applies fleet-wide.
        let topo = parse_topology_spec("ib:1x2+roce:1").unwrap();
        assert_eq!(topo.gpus_per_node(), 2);
        assert_eq!(topo.device_count(), 4);
    }
}
