//! Multi-iteration training-run simulation.
//!
//! The paper reports steady-state per-iteration numbers; a real run also
//! has warm-up iterations (communicator construction, allocator churn) and
//! per-iteration jitter (stragglers, OS noise). This module layers both on
//! the deterministic single-iteration simulation so that users can ask the
//! questions that matter for a multi-week job: expected tokens/second,
//! tail-iteration behaviour, and wall-clock to a token budget.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::HolmesConfig;
use crate::runner::{run_scenario, RunError, Scenario};
use holmes_engine::DpSyncStrategy;

/// Configuration of a simulated multi-iteration run.
#[derive(Debug, Clone, Copy)]
pub struct TrainingRunConfig {
    /// Iterations to simulate (excluding warm-up).
    pub iterations: u32,
    /// Warm-up iterations, slower by `warmup_penalty`.
    pub warmup_iterations: u32,
    /// Multiplicative slowdown of warm-up iterations (e.g. 1.5).
    pub warmup_penalty: f64,
    /// Relative per-iteration jitter σ (0.0 = deterministic). Applied as a
    /// one-sided straggler tail: `time × (1 + |σ·z|)`.
    pub jitter: f64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for TrainingRunConfig {
    fn default() -> Self {
        TrainingRunConfig {
            iterations: 50,
            warmup_iterations: 3,
            warmup_penalty: 1.5,
            jitter: 0.03,
            seed: 0x11071107,
        }
    }
}

/// Aggregate statistics of a simulated run.
#[derive(Debug, Clone)]
pub struct TrainingRunReport {
    /// Per-iteration wall-clock seconds (steady-state only).
    pub iteration_seconds: Vec<f64>,
    /// Mean steady-state iteration seconds.
    pub mean_seconds: f64,
    /// Median (p50).
    pub p50_seconds: f64,
    /// 95th percentile.
    pub p95_seconds: f64,
    /// Mean training throughput in samples/second.
    pub samples_per_sec: f64,
    /// Mean token throughput (`samples/sec × seq_len`).
    pub tokens_per_sec: f64,
    /// Total simulated wall-clock including warm-up.
    pub total_seconds: f64,
}

impl TrainingRunReport {
    /// Wall-clock days to consume `tokens` at the mean rate (the paper's
    /// motivating arithmetic: OPT-175B took 33 days on 1024 GPUs).
    pub fn days_for_tokens(&self, tokens: f64) -> f64 {
        tokens / self.tokens_per_sec / 86_400.0
    }
}

/// Simulate a multi-iteration training run of a scenario.
pub fn simulate_training_run(
    scenario: &Scenario,
    cfg: &HolmesConfig,
    run_cfg: &TrainingRunConfig,
) -> Result<TrainingRunReport, RunError> {
    assert!(run_cfg.iterations >= 1, "need at least one iteration");
    assert!(run_cfg.jitter >= 0.0, "jitter must be non-negative");
    let base = run_scenario(scenario, cfg, DpSyncStrategy::DistributedOptimizer)?;
    let base_seconds = base.metrics.iteration_seconds;
    let mut rng = StdRng::seed_from_u64(run_cfg.seed);

    let mut total = 0.0;
    for _ in 0..run_cfg.warmup_iterations {
        total += base_seconds * run_cfg.warmup_penalty;
    }
    let mut iteration_seconds = Vec::with_capacity(run_cfg.iterations as usize);
    for _ in 0..run_cfg.iterations {
        // One-sided straggler tail from a folded normal approximation
        // (sum of 12 uniforms − 6 ≈ N(0, 1)).
        let z: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
        let t = base_seconds * (1.0 + (run_cfg.jitter * z).abs());
        iteration_seconds.push(t);
        total += t;
    }

    let mut sorted = iteration_seconds.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let mean = iteration_seconds.iter().sum::<f64>() / iteration_seconds.len() as f64;
    let pct = |q: f64| {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    };
    let samples_per_sec = f64::from(scenario.request.job.global_batch) / mean;
    let tokens_per_sec = samples_per_sec * f64::from(scenario.request.job.config.seq_len);

    Ok(TrainingRunReport {
        iteration_seconds,
        mean_seconds: mean,
        p50_seconds: pct(0.5),
        p95_seconds: pct(0.95),
        samples_per_sec,
        tokens_per_sec,
        total_seconds: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use holmes_topology::presets;

    fn scenario() -> Scenario {
        Scenario::new(presets::hybrid_two_cluster(2), 1)
    }

    #[test]
    fn run_statistics_are_coherent() {
        let report = simulate_training_run(
            &scenario(),
            &HolmesConfig::full(),
            &TrainingRunConfig::default(),
        )
        .unwrap();
        assert_eq!(report.iteration_seconds.len(), 50);
        assert!(report.p50_seconds <= report.p95_seconds);
        assert!(report.mean_seconds >= report.p50_seconds * 0.9);
        assert!(report.tokens_per_sec > report.samples_per_sec);
        let steady: f64 = report.iteration_seconds.iter().sum();
        assert!(report.total_seconds > steady, "warm-up adds time");
    }

    #[test]
    fn zero_jitter_is_deterministically_flat() {
        let cfg = TrainingRunConfig {
            jitter: 0.0,
            ..TrainingRunConfig::default()
        };
        let report = simulate_training_run(&scenario(), &HolmesConfig::full(), &cfg).unwrap();
        let first = report.iteration_seconds[0];
        assert!(report
            .iteration_seconds
            .iter()
            .all(|&t| (t - first).abs() < 1e-12));
        assert!((report.p95_seconds - first).abs() < 1e-12);
    }

    #[test]
    fn same_seed_reproduces_same_run() {
        let cfg = TrainingRunConfig::default();
        let a = simulate_training_run(&scenario(), &HolmesConfig::full(), &cfg).unwrap();
        let b = simulate_training_run(&scenario(), &HolmesConfig::full(), &cfg).unwrap();
        assert_eq!(a.iteration_seconds, b.iteration_seconds);
        let different_seed = TrainingRunConfig { seed: 7, ..cfg };
        let c = simulate_training_run(&scenario(), &HolmesConfig::full(), &different_seed).unwrap();
        assert_ne!(a.iteration_seconds, c.iteration_seconds);
    }

    #[test]
    fn jitter_only_slows_never_speeds() {
        let base = simulate_training_run(
            &scenario(),
            &HolmesConfig::full(),
            &TrainingRunConfig {
                jitter: 0.0,
                ..TrainingRunConfig::default()
            },
        )
        .unwrap()
        .mean_seconds;
        let jittered = simulate_training_run(
            &scenario(),
            &HolmesConfig::full(),
            &TrainingRunConfig::default(),
        )
        .unwrap();
        assert!(jittered
            .iteration_seconds
            .iter()
            .all(|&t| t >= base - 1e-12));
    }

    #[test]
    fn token_budget_arithmetic() {
        let report = simulate_training_run(
            &scenario(),
            &HolmesConfig::full(),
            &TrainingRunConfig::default(),
        )
        .unwrap();
        let days = report.days_for_tokens(report.tokens_per_sec * 86_400.0);
        assert!((days - 1.0).abs() < 1e-9);
    }
}
