//! `holmes_sim` — command-line front end to the Holmes simulator.
//!
//! ```text
//! USAGE:
//!   holmes_sim [--env ENV] [--nodes N] [--pg K] [--framework F]
//!              [--iterations I] [--alpha A] [--trace FILE]
//!
//!   --env        infiniband | roce | ethernet | hybrid | ib+eth | roce+eth
//!                (default: hybrid)
//!   --topo       explicit topology spec, e.g. "ib:2x4+roce:2x4"
//!                (overrides --env/--nodes)
//!   --nodes      total node count, split evenly for two-cluster envs
//!                (default: 4)
//!   --pg         Table 2 parameter group 1..=8 (default: 1)
//!   --framework  holmes | megatron-lm | megatron-deepspeed | megatron-llama
//!                (default: holmes)
//!   --iterations simulate a multi-iteration run of this length
//!   --alpha      Self-Adapting Partition α (default: 1.05)
//!   --trace      write a Chrome-trace JSON of one iteration to FILE
//!   --json       print the result as a JSON object instead of text
//! ```

use std::process::ExitCode;

use holmes::topology::{presets, NicType, Topology};
use holmes::{
    run_framework, run_holmes_with, simulate_training_run, FrameworkKind, HolmesConfig, Scenario,
    TrainingRunConfig,
};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Args {
    env: String,
    topo: Option<String>,
    nodes: u32,
    pg: u8,
    framework: FrameworkKind,
    iterations: Option<u32>,
    alpha: f64,
    trace: Option<String>,
    json: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            env: "hybrid".to_owned(),
            topo: None,
            nodes: 4,
            pg: 1,
            framework: FrameworkKind::Holmes,
            iterations: None,
            alpha: 1.05,
            trace: None,
            json: false,
        }
    }
}

/// Parse arguments; pure so it is unit-testable.
fn parse_args<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--env" => args.env = value("--env")?,
            "--topo" => args.topo = Some(value("--topo")?),
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--pg" => {
                args.pg = value("--pg")?.parse().map_err(|e| format!("--pg: {e}"))?;
                if !(1..=8).contains(&args.pg) {
                    return Err("--pg must be 1..=8".to_owned());
                }
            }
            "--framework" => {
                args.framework = match value("--framework")?.as_str() {
                    "holmes" => FrameworkKind::Holmes,
                    "megatron-lm" => FrameworkKind::MegatronLm,
                    "megatron-deepspeed" => FrameworkKind::MegatronDeepSpeed,
                    "megatron-llama" => FrameworkKind::MegatronLlama,
                    other => return Err(format!("unknown framework '{other}'")),
                }
            }
            "--iterations" => {
                args.iterations = Some(
                    value("--iterations")?
                        .parse()
                        .map_err(|e| format!("--iterations: {e}"))?,
                )
            }
            "--alpha" => {
                args.alpha = value("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--json" => args.json = true,
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Build the topology for an environment name.
fn build_topology(env: &str, nodes: u32) -> Result<Topology, String> {
    if nodes == 0 {
        return Err("--nodes must be positive".to_owned());
    }
    let half = (nodes / 2).max(1);
    Ok(match env {
        "infiniband" | "ib" => presets::homogeneous(NicType::InfiniBand, nodes),
        "roce" => presets::homogeneous(NicType::RoCE, nodes),
        "ethernet" | "eth" => presets::homogeneous(NicType::Ethernet, nodes),
        "hybrid" => presets::hybrid_two_cluster(half),
        "ib+eth" => presets::same_nic_two_clusters(NicType::InfiniBand, half),
        "roce+eth" => presets::same_nic_two_clusters(NicType::RoCE, half),
        other => return Err(format!("unknown environment '{other}'")),
    })
}

fn run(args: Args) -> Result<(), String> {
    let topo = match &args.topo {
        Some(spec) => holmes::topology::parse_topology_spec(spec)?,
        None => build_topology(&args.env, args.nodes)?,
    };
    if !args.json {
        println!(
            "env={} nodes={} gpus={} pg={} framework={}",
            args.env,
            topo.node_count(),
            topo.device_count(),
            args.pg,
            args.framework
        );
    }

    let result = if args.framework == FrameworkKind::Holmes {
        let cfg = HolmesConfig {
            alpha: args.alpha,
            ..HolmesConfig::full()
        };
        run_holmes_with(&cfg, &topo, args.pg)
    } else {
        run_framework(args.framework, &topo, args.pg)
    }
    .map_err(|e| e.to_string())?;

    if args.json {
        let layers: Vec<String> = result.stage_layers.iter().map(u32::to_string).collect();
        println!(
            "{{\"framework\":\"{}\",\"gpus\":{},\"pg\":{},\"iteration_seconds\":{:.6},\
             \"tflops_per_gpu\":{:.3},\"samples_per_sec\":{:.3},\"stage_layers\":[{}],\
             \"rdma_dp_groups\":{},\"total_dp_groups\":{}}}",
            args.framework,
            topo.device_count(),
            args.pg,
            result.metrics.iteration_seconds,
            result.metrics.tflops_per_gpu,
            result.metrics.throughput_samples_per_sec,
            layers.join(","),
            result.nic.rdma_groups,
            result.nic.groups.len()
        );
    } else {
        println!(
            "iteration: {:.2} s | {:.1} TFLOPS/GPU | {:.2} samples/s | stage layers {:?}",
            result.metrics.iteration_seconds,
            result.metrics.tflops_per_gpu,
            result.metrics.throughput_samples_per_sec,
            result.stage_layers
        );
        println!(
            "NIC selection: {}/{} data-parallel groups on RDMA",
            result.nic.rdma_groups,
            result.nic.groups.len()
        );
    }

    if let Some(path) = &args.trace {
        std::fs::write(path, result.report.timeline.to_chrome_trace())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("chrome trace written to {path}");
    }

    if let Some(iterations) = args.iterations {
        let cfg = HolmesConfig {
            alpha: args.alpha,
            ..HolmesConfig::full()
        };
        let report = simulate_training_run(
            &Scenario::new(topo, args.pg),
            &cfg,
            &TrainingRunConfig {
                iterations,
                ..TrainingRunConfig::default()
            },
        )
        .map_err(|e| e.to_string())?;
        println!(
            "{iterations}-iteration run: mean {:.2} s, p95 {:.2} s, {:.0} tokens/s",
            report.mean_seconds, report.p95_seconds, report.tokens_per_sec
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(argv) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg == "help" => {
            eprintln!("see module docs: holmes_sim --env hybrid --nodes 4 --pg 1");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_when_no_flags() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, Args::default());
    }

    #[test]
    fn full_flag_set_parses() {
        let args = parse(&[
            "--env",
            "roce",
            "--nodes",
            "8",
            "--pg",
            "3",
            "--framework",
            "megatron-llama",
            "--iterations",
            "20",
            "--alpha",
            "1.1",
            "--trace",
            "/tmp/t.json",
        ])
        .unwrap();
        assert_eq!(args.env, "roce");
        assert_eq!(args.nodes, 8);
        assert_eq!(args.pg, 3);
        assert_eq!(args.framework, FrameworkKind::MegatronLlama);
        assert_eq!(args.iterations, Some(20));
        assert!((args.alpha - 1.1).abs() < 1e-12);
        assert_eq!(args.trace.as_deref(), Some("/tmp/t.json"));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(parse(&["--pg", "9"]).is_err());
        assert!(parse(&["--pg"]).is_err());
        assert!(parse(&["--framework", "pytorch"]).is_err());
        assert!(parse(&["--nodes", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn json_flag_parses() {
        assert!(parse(&["--json"]).unwrap().json);
        assert!(!parse(&[]).unwrap().json);
    }

    #[test]
    fn topo_spec_flag_parses() {
        let args = parse(&["--topo", "ib:2x4+roce:2x4"]).unwrap();
        assert_eq!(args.topo.as_deref(), Some("ib:2x4+roce:2x4"));
    }

    #[test]
    fn topologies_build_for_every_env_name() {
        for env in [
            "infiniband",
            "ib",
            "roce",
            "ethernet",
            "eth",
            "hybrid",
            "ib+eth",
            "roce+eth",
        ] {
            let topo = build_topology(env, 4).unwrap();
            assert!(topo.device_count() > 0, "{env}");
        }
        assert!(build_topology("token-ring", 4).is_err());
        assert!(build_topology("hybrid", 0).is_err());
    }
}
