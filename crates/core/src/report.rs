//! Paper-style table rendering for the benchmark harness.

use std::fmt::Write as _;

/// A simple fixed-width table builder producing aligned plain-text tables
/// like the paper's, with an optional `paper vs measured` convention.
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Start a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        TableBuilder {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn header<I, S>(mut self, cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row.
    pub fn row<I, S>(&mut self, cols: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// A `"paper → measured"` cell.
    pub fn paper_vs(paper: f64, measured: f64) -> String {
        format!("{paper:.1} → {measured:.1}")
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |row: &[String]| {
            let mut line = String::from("|");
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                let _ = write!(line, " {}{} |", cell, " ".repeat(pad));
            }
            line
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header));
            let mut sep = String::from("|");
            for width in &widths {
                let _ = write!(sep, "{}|", "-".repeat(width + 2));
            }
            let _ = writeln!(out, "{sep}");
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

impl std::fmt::Display for TableBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TableBuilder::new("Demo").header(["NIC", "TFLOPS"]);
        t.row(["InfiniBand", "197"]);
        t.row(["RoCE", "160"]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| NIC        | TFLOPS |"));
        assert!(s.contains("| RoCE       | 160    |"));
    }

    #[test]
    fn paper_vs_format() {
        assert_eq!(TableBuilder::paper_vs(197.0, 203.4), "197.0 → 203.4");
    }

    #[test]
    fn empty_table_renders_title_only() {
        let t = TableBuilder::new("Empty");
        assert_eq!(t.render(), "## Empty\n");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TableBuilder::new("").header(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.contains("| 1 |   |   |"));
    }
}
