//! Closed-form iteration-time estimation.
//!
//! The event-driven simulator is the ground truth, but plan *search* wants
//! thousands of what-if evaluations. This estimator composes the analytic
//! building blocks (pipeline-bubble formula, ring-collective cost models,
//! per-stage compute costs) into a microseconds-cheap prediction, and is
//! cross-validated against the simulator in the test suite (and by the
//! `estimator accuracy` extension experiment).

use holmes_engine::{ComputeModel, DpSyncStrategy, EngineConfig, TransportPolicy};
use holmes_model::{embedding_params, layer_params, CommVolumes, TrainJob};
use holmes_netsim::{Communicator, Fabric, NetSim};
use holmes_parallel::ParallelPlan;
use holmes_topology::Topology;

/// Decomposed iteration-time estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEstimate {
    /// Predicted end-to-end iteration seconds.
    pub seconds: f64,
    /// Steady-state pipeline compute (all micro-batches at the slowest
    /// stage's rate).
    pub compute_seconds: f64,
    /// Pipeline fill/drain bubble.
    pub bubble_seconds: f64,
    /// Exposed data-parallel synchronization after overlap.
    pub dp_sync_seconds: f64,
    /// Stage-boundary activation traffic not hidden under compute.
    pub p2p_seconds: f64,
    /// Optimizer step.
    pub optimizer_seconds: f64,
}

/// Estimate one training iteration for a plan without simulating it.
///
/// Returns `None` when the batch does not divide across replicas (the same
/// condition under which the engine's builder errors).
pub fn estimate_iteration(
    topo: &Topology,
    plan: &ParallelPlan,
    job: &TrainJob,
    cfg: &EngineConfig,
) -> Option<IterationEstimate> {
    let degrees = plan.degrees();
    let (t, p, d) = (degrees.tensor, degrees.pipeline, degrees.data);
    let m = job.microbatches_per_replica(d)?;

    // Per-stage compute and parameters.
    let mut slot_max = 0.0f64; // fwd+bwd of the slowest stage
    let mut stage_params = Vec::with_capacity(p as usize);
    let mut models = Vec::with_capacity(p as usize);
    for stage in 0..p {
        let device0 = plan.stage_devices(stage)[0];
        let coord = topo.coord(device0).ok()?;
        let node = &topo.clusters()[coord.cluster.0 as usize].nodes[coord.node.0 as usize];
        let model = ComputeModel::with_interference(
            job.config,
            node.gpu.clone(),
            node.intra_link,
            t,
            job.micro_batch,
            node.nic.compute_interference,
        );
        let cost = model.stage_cost(plan.stage_layers[stage as usize], stage == p - 1);
        slot_max = slot_max.max(cost.fwd_seconds + cost.bwd_seconds);
        let mut params = u64::from(plan.stage_layers[stage as usize]) * layer_params(&job.config);
        if stage == 0 {
            params += embedding_params(&job.config);
        }
        stage_params.push(params);
        models.push((model, cost));
    }

    let compute_seconds = f64::from(m) * slot_max;
    // 1F1B / GPipe bubble: (p − 1) slots of the slowest stage.
    let bubble_seconds = f64::from(p - 1) * slot_max;

    // Stage-boundary p2p: each boundary node forwards `G` pipeline groups'
    // activations per micro-batch in each direction; compare against the
    // compute available to hide it.
    let p2p_seconds = if p > 1 {
        let act =
            CommVolumes::p2p_activation_bytes(&job.config, job.micro_batch, t, plan.scatter_gather);
        // Worst boundary: the slowest link out of stage 0.
        let from = plan.stage_devices(0)[0];
        let to = plan.stage_devices(1)[0];
        let link = topo.link_between(from, to).ok()?;
        let forced_tcp = cfg.transport == TransportPolicy::ForceTcpInterNode;
        let bw = if forced_tcp && !link.kind.is_intra_node() {
            // Approximate the forced-TCP path with the inter-cluster profile.
            topo.inter_cluster_profile().effective_bytes_per_sec()
        } else {
            link.bandwidth_bytes_per_sec
        };
        let g = f64::from(topo.gpus_per_node());
        // Per node per micro-batch slot: G groups × act bytes × 2 dirs
        // through a (ports-limited) uplink ≈ g/ports flows per port.
        let per_slot = g * act.max(1) as f64 * 2.0
            / (bw
                * f64::from(
                    plan.stage_devices(0)
                        .first()
                        .and_then(|r| topo.device(*r).ok())
                        .map(|dev| dev.nic.ports_per_node)
                        .unwrap_or(1),
                ));
        (f64::from(m) * (per_slot - slot_max).max(0.0)).max(0.0)
    } else {
        0.0
    };

    // Data-parallel sync: ring cost on each stage's DP group; overlap hides
    // up to one backward of compute per the overlapped strategy.
    let mut sim = NetSim::new();
    let fabric = Fabric::build(topo, &mut sim);
    let mut dp_sync_seconds = 0.0f64;
    let mut optimizer_seconds = 0.0f64;
    for g in 0..plan.layout.dp_group_count() {
        let stage = g / t;
        let devices = plan.dp_group_devices(g);
        let grad_bytes = CommVolumes::dp_gradient_bytes(stage_params[stage as usize], t);
        let param_bytes = stage_params[stage as usize] / u64::from(t) * 2;
        let (model, cost) = &models[stage as usize];
        let comm = if cfg.transport == TransportPolicy::ForceTcpInterNode && devices.len() > 1 {
            // Approximate: the forced-TCP ring bottoms out at the slowest
            // node's Ethernet effective rate.
            None
        } else {
            Some(Communicator::new(topo, &fabric, devices.clone()))
        };
        let (rs, ag) = match &comm {
            Some(c) => (
                c.reduce_scatter_seconds(grad_bytes),
                c.all_gather_seconds(param_bytes),
            ),
            None => {
                let eth = topo.inter_cluster_profile();
                let n = devices.len() as u32;
                let bw = eth.effective_bytes_per_sec();
                let lat = eth.latency_ns() as f64 * 1e-9;
                (
                    holmes_netsim::collective::reduce_scatter_seconds(n, grad_bytes, bw, lat),
                    holmes_netsim::collective::all_gather_seconds(n, param_bytes, bw, lat),
                )
            }
        };
        let spans_clusters = devices.split_first().is_some_and(|(&first, rest)| {
            let cluster = |r| topo.coord(r).map(|c| c.cluster).ok();
            rest.iter().any(|&r| cluster(r) != cluster(first))
        });
        let sync = match cfg.dp_sync {
            DpSyncStrategy::AllReduce
                if cfg.hierarchical_cross_cluster && spans_clusters && comm.is_some() =>
            {
                // The builder upgrades this group to the hierarchical
                // all-reduce; score the same IR schedule the executor will
                // replay (fold with per-node contention).
                holmes_netsim::algo::estimate_collective(
                    topo,
                    holmes_netsim::algo::CollKind::HierarchicalAllReduce,
                    &devices,
                    grad_bytes,
                )
            }
            DpSyncStrategy::AllReduce => {
                // all-reduce ≈ RS + AG over gradient bytes.
                rs + match &comm {
                    Some(c) => c.all_gather_seconds(grad_bytes),
                    None => rs,
                }
            }
            DpSyncStrategy::DistributedOptimizer => rs + ag,
            // ZeRO-3 pays the same RS plus a *blocking* parameter gather
            // at the start of the iteration (same volume as the ZeRO-1
            // trailing gather, but never overlapped with the cooldown).
            DpSyncStrategy::Zero3 => rs + ag,
            DpSyncStrategy::OverlappedOptimizer { .. } => {
                // The RS hides under the final backward.
                (rs - cost.bwd_seconds).max(0.0) + ag
            }
            DpSyncStrategy::ParameterServer { servers } => {
                // Push + pull, each a single star-shaped round: score the
                // same IR schedules the executor will replay (the incast
                // contention at the servers is the whole point).
                holmes_netsim::algo::estimate_collective(
                    topo,
                    holmes_netsim::algo::CollKind::PsPush { servers },
                    &devices,
                    grad_bytes,
                ) + holmes_netsim::algo::estimate_collective(
                    topo,
                    holmes_netsim::algo::CollKind::PsPull { servers },
                    &devices,
                    param_bytes,
                )
            }
        };
        dp_sync_seconds = dp_sync_seconds.max(sync);
        let shards = cfg.dp_sync.optimizer_shards(d);
        optimizer_seconds = optimizer_seconds
            .max(model.optimizer_seconds(
                stage_params[stage as usize] / u64::from(t) / u64::from(shards),
            ));
    }

    Some(IterationEstimate {
        seconds: compute_seconds
            + bubble_seconds
            + dp_sync_seconds
            + p2p_seconds
            + optimizer_seconds,
        compute_seconds,
        bubble_seconds,
        dp_sync_seconds,
        p2p_seconds,
        optimizer_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HolmesConfig;
    use crate::planner::{plan_for, PlanRequest};
    use holmes_engine::simulate_iteration;
    use holmes_topology::{presets, NicType};

    fn compare(topo: &Topology, pg: u8) -> (f64, f64) {
        let (plan, engine_cfg) = plan_for(
            topo,
            &PlanRequest::parameter_group(pg),
            &HolmesConfig::full(),
            DpSyncStrategy::DistributedOptimizer,
        )
        .unwrap();
        let job = PlanRequest::parameter_group(pg).job;
        let est = estimate_iteration(topo, &plan, &job, &engine_cfg).unwrap();
        let (report, _) = simulate_iteration(topo, &plan, &job, &engine_cfg).unwrap();
        (est.seconds, report.total_seconds)
    }

    #[test]
    fn estimator_within_25_percent_of_simulation() {
        for nic in NicType::ALL {
            let topo = presets::homogeneous(nic, 4);
            let (est, sim) = compare(&topo, 1);
            let rel = (est - sim).abs() / sim;
            assert!(
                rel < 0.25,
                "{nic}: est {est:.2} vs sim {sim:.2} (rel {rel:.3})"
            );
        }
        let hybrid = presets::hybrid_two_cluster(2);
        let (est, sim) = compare(&hybrid, 1);
        assert!(
            ((est - sim).abs() / sim) < 0.25,
            "hybrid est {est} vs {sim}"
        );
    }

    #[test]
    fn estimator_preserves_environment_ordering() {
        let mut values = Vec::new();
        for nic in NicType::ALL {
            let topo = presets::homogeneous(nic, 4);
            values.push(compare(&topo, 1).0);
        }
        assert!(values[0] < values[1] && values[1] < values[2], "{values:?}");
    }

    #[test]
    fn estimate_decomposition_sums() {
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let (plan, engine_cfg) = plan_for(
            &topo,
            &PlanRequest::parameter_group(1),
            &HolmesConfig::full(),
            DpSyncStrategy::DistributedOptimizer,
        )
        .unwrap();
        let job = PlanRequest::parameter_group(1).job;
        let e = estimate_iteration(&topo, &plan, &job, &engine_cfg).unwrap();
        let sum = e.compute_seconds
            + e.bubble_seconds
            + e.dp_sync_seconds
            + e.p2p_seconds
            + e.optimizer_seconds;
        assert!((e.seconds - sum).abs() < 1e-12);
        assert!(e.compute_seconds > 0.0 && e.bubble_seconds > 0.0);
    }

    #[test]
    fn indivisible_batch_estimates_none() {
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let (plan, engine_cfg) = plan_for(
            &topo,
            &PlanRequest::parameter_group(1),
            &HolmesConfig::full(),
            DpSyncStrategy::DistributedOptimizer,
        )
        .unwrap();
        let mut job = PlanRequest::parameter_group(1).job;
        job.global_batch = 7;
        assert!(estimate_iteration(&topo, &plan, &job, &engine_cfg).is_none());
    }
}
