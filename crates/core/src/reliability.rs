//! Fault handling and checkpointing — the paper's declared future work
//! ("In the future, we need to explore scheduling methods for diverse
//! environments and figure out how to handle faults", §1).
//!
//! This module layers the classical checkpoint/restart analysis on top of
//! the simulated iteration time:
//!
//! * a fleet-level failure model (per-node MTBF composes into a job-level
//!   failure rate — a 96-GPU job fails 12× as often as one node);
//! * checkpoint cost derived from the actual model state size and the
//!   fleet's storage bandwidth;
//! * the Young/Daly optimal checkpoint interval `√(2·δ·MTBF)`;
//! * **goodput**: the fraction of wall-clock that survives failures and
//!   checkpoint overhead, turning per-iteration throughput into realistic
//!   end-to-end training throughput.

use holmes_model::{GptConfig, BYTES_PER_PARAM_FULL};
use holmes_topology::Topology;

/// Fleet reliability parameters.
///
/// ```
/// use holmes::ReliabilityModel;
/// use holmes_model::ParameterGroup;
/// use holmes_topology::presets;
///
/// let plan = ReliabilityModel::default().plan(
///     &presets::hybrid_split(4, 4),
///     &ParameterGroup::table2(3).config,
/// );
/// assert!(plan.goodput > 0.9 && plan.goodput < 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ReliabilityModel {
    /// Mean time between failures of a single node, in hours. Large-scale
    /// LLM reports put this around 500–2000 h per node.
    pub node_mtbf_hours: f64,
    /// Aggregate checkpoint-storage write bandwidth in bytes/second.
    pub storage_bytes_per_sec: f64,
    /// Wall-clock lost per failure before work resumes (detection,
    /// rescheduling, NCCL re-init), in seconds.
    pub restart_overhead_seconds: f64,
}

impl Default for ReliabilityModel {
    fn default() -> Self {
        ReliabilityModel {
            node_mtbf_hours: 1000.0,
            storage_bytes_per_sec: 20e9,
            restart_overhead_seconds: 300.0,
        }
    }
}

/// Derived checkpoint/restart plan for a job on a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPlan {
    /// Job-level mean time between failures, seconds.
    pub job_mtbf_seconds: f64,
    /// Seconds to write one full checkpoint.
    pub checkpoint_seconds: f64,
    /// Young/Daly optimal interval between checkpoints, seconds.
    pub interval_seconds: f64,
    /// Expected fraction of wall-clock doing useful training (goodput).
    pub goodput: f64,
}

impl ReliabilityModel {
    /// Job-level MTBF: any of the fleet's nodes failing kills the
    /// synchronous job, so rates add.
    pub fn job_mtbf_seconds(&self, topo: &Topology) -> f64 {
        assert!(self.node_mtbf_hours > 0.0, "MTBF must be positive");
        self.node_mtbf_hours * 3600.0 / f64::from(topo.node_count().max(1))
    }

    /// Full checkpoint size: parameters + optimizer state (the 16 bytes
    /// per parameter of mixed-precision Adam).
    pub fn checkpoint_bytes(&self, cfg: &GptConfig) -> u64 {
        cfg.parameter_count() * BYTES_PER_PARAM_FULL
    }

    /// Seconds to write one checkpoint at the storage bandwidth.
    pub fn checkpoint_seconds(&self, cfg: &GptConfig) -> f64 {
        assert!(
            self.storage_bytes_per_sec > 0.0,
            "storage bandwidth must be positive"
        );
        self.checkpoint_bytes(cfg) as f64 / self.storage_bytes_per_sec
    }

    /// Compute the checkpoint plan for a model on a fleet.
    ///
    /// Goodput uses the first-order expansion of the checkpoint/restart
    /// overhead: a `δ`-second checkpoint every `τ` seconds costs `δ/τ`;
    /// each failure wastes on average `τ/2` of work plus the restart
    /// overhead, at rate `1/MTBF`.
    pub fn plan(&self, topo: &Topology, cfg: &GptConfig) -> CheckpointPlan {
        let mtbf = self.job_mtbf_seconds(topo);
        let delta = self.checkpoint_seconds(cfg);
        // Young/Daly; clamp so τ ≥ δ (checkpointing cannot exceed work).
        let interval = (2.0 * delta * mtbf).sqrt().max(delta);
        let checkpoint_overhead = delta / interval;
        let failure_overhead = (interval / 2.0 + self.restart_overhead_seconds) / mtbf;
        let goodput = (1.0 - checkpoint_overhead - failure_overhead).clamp(0.0, 1.0);
        CheckpointPlan {
            job_mtbf_seconds: mtbf,
            checkpoint_seconds: delta,
            interval_seconds: interval,
            goodput,
        }
    }
}

impl CheckpointPlan {
    /// Effective samples/second after reliability overheads.
    pub fn effective_throughput(&self, raw_samples_per_sec: f64) -> f64 {
        raw_samples_per_sec * self.goodput
    }
}

/// Result of [`ReliabilityModel::simulated_goodput`]: one seeded replay of
/// the checkpoint/restart state machine over a training horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodputTrace {
    /// Fraction of the horizon spent on surviving (non-recomputed,
    /// non-checkpoint, non-restart) training work.
    pub goodput: f64,
    /// Failures drawn within the horizon.
    pub failures: u64,
    /// Checkpoints completed within the horizon.
    pub checkpoints: u64,
    /// Useful training seconds that survived.
    pub useful_seconds: f64,
    /// Simulated horizon, seconds.
    pub horizon_seconds: f64,
}

impl ReliabilityModel {
    /// Trace-driven goodput: replay the checkpoint/restart state machine
    /// against seeded exponential failure times and *measure* the
    /// surviving work fraction, instead of expanding it analytically.
    ///
    /// The job alternates `interval_seconds` of work with
    /// `checkpoint_seconds` of checkpointing (the [`plan`] the analytic
    /// model prescribes). Failures arrive as a Poisson process at the
    /// job-level rate; a failure throws away everything since the last
    /// *completed* checkpoint, pays `restart_overhead_seconds`, and
    /// resumes. Deterministic in `(seed, topo, cfg, horizon)` — the same
    /// seed replays the same failure times, making this the analytic
    /// cross-check for the fault-injection stack (see
    /// `tests/resilience.rs`): [`plan`]'s first-order `goodput` must
    /// agree with the measured trace within a few percent when the
    /// horizon covers many MTBFs.
    ///
    /// [`plan`]: ReliabilityModel::plan
    pub fn simulated_goodput(
        &self,
        topo: &Topology,
        cfg: &GptConfig,
        seed: u64,
        horizon_seconds: f64,
    ) -> GoodputTrace {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        assert!(horizon_seconds > 0.0, "horizon must be positive");
        let plan = self.plan(topo, cfg);
        let mtbf = plan.job_mtbf_seconds;
        let tau = plan.interval_seconds;
        let delta = plan.checkpoint_seconds;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut exp = |mean: f64| {
            let u: f64 = rng.random();
            -mean * (1.0 - u).ln()
        };
        let mut t = 0.0f64;
        let mut next_failure = exp(mtbf);
        let mut useful = 0.0f64;
        let mut failures = 0u64;
        let mut checkpoints = 0u64;
        while t < horizon_seconds {
            let segment_end = t + tau + delta;
            if next_failure < segment_end.min(horizon_seconds) {
                // Crash mid-segment: work since the last completed
                // checkpoint is recomputed, so none of it counts.
                failures += 1;
                t = next_failure + self.restart_overhead_seconds;
                next_failure = t + exp(mtbf);
                continue;
            }
            if segment_end > horizon_seconds {
                // Horizon lands mid-segment: count work done so far this
                // segment (it is never invalidated within the horizon).
                useful += (horizon_seconds - t).min(tau).max(0.0);
                break;
            }
            // Segment completes: τ of work survives the checkpoint.
            useful += tau;
            checkpoints += 1;
            t = segment_end;
        }
        GoodputTrace {
            goodput: (useful / horizon_seconds).clamp(0.0, 1.0),
            failures,
            checkpoints,
            useful_seconds: useful.max(0.0),
            horizon_seconds,
        }
    }
}

/// The elastic runtime's response to losing a node mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticAction {
    /// Stall until the preempted node (or a replacement) comes back, then
    /// resume at full throughput with no state movement.
    Wait,
    /// Re-shard in place: migrate optimizer state onto the survivors and
    /// continue degraded at the surviving fraction of throughput.
    Reshard,
    /// Abandon the in-memory state: restore the last checkpoint onto the
    /// survivors and recompute the lost interval.
    Restore,
}

impl ElasticAction {
    /// Stable name used in logs and BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            ElasticAction::Wait => "wait",
            ElasticAction::Reshard => "reshard",
            ElasticAction::Restore => "restore",
        }
    }
}

/// Throughput consequences of one churn event, fed to
/// [`ElasticPolicy::decide`]. Both fields come from the migration-aware
/// re-plan (`holmes_parallel::replan_for_delta`): the surviving fraction
/// from the post-churn capacity and DP-sync slowdown, the stall from the
/// simulated optimizer-state migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnImpact {
    /// Post-churn throughput as a fraction of pre-churn throughput
    /// (capacity loss × DP-sync slowdown; > 1 after a scale-up).
    pub surviving_fraction: f64,
    /// Stall before the survivors can take the next step when
    /// re-sharding in place (the simulated state-migration wall-clock).
    pub reshard_stall_seconds: f64,
}

/// What [`ElasticPolicy::decide`] chose and the expected goodput of every
/// candidate over the decision window (so logs can show the margin, not
/// just the winner).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticDecision {
    /// The argmax action. Ties break toward the operationally simplest
    /// option: wait over re-shard over restore.
    pub action: ElasticAction,
    /// Steady-state goodput the decision amortizes against.
    pub baseline_goodput: f64,
    /// Expected goodput over the window if the job waits the node out.
    pub wait_goodput: f64,
    /// Expected goodput over the window if the job re-shards in place.
    pub reshard_goodput: f64,
    /// Expected goodput over the window if the job restores a checkpoint.
    pub restore_goodput: f64,
}

/// Young/Daly-based wait-vs-reshard-vs-restore policy.
///
/// Every candidate is scored as expected goodput over a fixed decision
/// window: the steady-state goodput (trace-measured via
/// [`ReliabilityModel::simulated_goodput`], or analytic via
/// [`ReliabilityModel::plan`]) times the surviving throughput fraction,
/// discounted by the stall the action pays up front. The restore stall is
/// the classical checkpoint/restart rework: restart overhead + one
/// checkpoint read-back + half a Young/Daly interval of recompute.
#[derive(Debug, Clone, Copy)]
pub struct ElasticPolicy {
    /// Fleet reliability parameters (also the source of the Young/Daly
    /// interval and the restore rework).
    pub model: ReliabilityModel,
    /// Expected seconds before a preempted node (or its replacement)
    /// rejoins — the price of [`ElasticAction::Wait`].
    pub node_return_seconds: f64,
    /// Window the stalls are amortized over. A short window favours
    /// waiting (the degraded steady state barely matters); a long one
    /// favours re-sharding.
    pub decision_window_seconds: f64,
    /// Horizon of the goodput trace, in job MTBFs. 200 keeps Poisson
    /// sampling noise within ±0.02 of the analytic expansion.
    pub goodput_horizon_mtbfs: f64,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            model: ReliabilityModel::default(),
            node_return_seconds: 1800.0,
            decision_window_seconds: 4.0 * 3600.0,
            goodput_horizon_mtbfs: 200.0,
        }
    }
}

impl ElasticPolicy {
    /// Decide wait vs re-shard vs restore, with the steady-state goodput
    /// *measured* by replaying the seeded checkpoint/restart trace
    /// ([`ReliabilityModel::simulated_goodput`]). Deterministic in
    /// `(topo, cfg, impact, seed)`; agrees with [`decide_analytic`]
    /// within the trace's sampling noise (±0.02 at the default horizon).
    ///
    /// [`decide_analytic`]: ElasticPolicy::decide_analytic
    pub fn decide(
        &self,
        topo: &Topology,
        cfg: &GptConfig,
        impact: &ChurnImpact,
        seed: u64,
    ) -> ElasticDecision {
        let horizon = self.goodput_horizon_mtbfs * self.model.job_mtbf_seconds(topo);
        let trace = self.model.simulated_goodput(topo, cfg, seed, horizon);
        self.decide_with_baseline(topo, cfg, impact, trace.goodput)
    }

    /// [`decide`](ElasticPolicy::decide) with the first-order analytic
    /// goodput ([`ReliabilityModel::plan`]) as the baseline — the
    /// closed-form cross-check for the trace-driven decision.
    pub fn decide_analytic(
        &self,
        topo: &Topology,
        cfg: &GptConfig,
        impact: &ChurnImpact,
    ) -> ElasticDecision {
        let plan = self.model.plan(topo, cfg);
        self.decide_with_baseline(topo, cfg, impact, plan.goodput)
    }

    fn decide_with_baseline(
        &self,
        topo: &Topology,
        cfg: &GptConfig,
        impact: &ChurnImpact,
        baseline_goodput: f64,
    ) -> ElasticDecision {
        assert!(
            self.decision_window_seconds > 0.0,
            "decision window must be positive"
        );
        let w = self.decision_window_seconds;
        let frac = impact.surviving_fraction.max(0.0);
        let plan = self.model.plan(topo, cfg);
        // Fraction of the window left after an up-front stall.
        let after = |stall: f64| (w - stall.max(0.0)).max(0.0) / w;
        let wait_goodput = baseline_goodput * after(self.node_return_seconds);
        let reshard_goodput = baseline_goodput * frac * after(impact.reshard_stall_seconds);
        let restore_stall = self.model.restart_overhead_seconds
            + plan.checkpoint_seconds
            + plan.interval_seconds / 2.0;
        let restore_goodput = baseline_goodput * frac * after(restore_stall);
        let action = if wait_goodput >= reshard_goodput && wait_goodput >= restore_goodput {
            ElasticAction::Wait
        } else if reshard_goodput >= restore_goodput {
            ElasticAction::Reshard
        } else {
            ElasticAction::Restore
        };
        ElasticDecision {
            action,
            baseline_goodput,
            wait_goodput,
            reshard_goodput,
            restore_goodput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holmes_model::ParameterGroup;
    use holmes_topology::{presets, NicType};

    #[test]
    fn job_mtbf_shrinks_with_fleet_size() {
        let model = ReliabilityModel::default();
        let small = model.job_mtbf_seconds(&presets::homogeneous(NicType::InfiniBand, 4));
        let large = model.job_mtbf_seconds(&presets::homogeneous(NicType::InfiniBand, 12));
        assert!((small / large - 3.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_size_matches_mixed_precision_adam() {
        let model = ReliabilityModel::default();
        let cfg = ParameterGroup::table2(1).config; // 3.6 B
        let bytes = model.checkpoint_bytes(&cfg);
        // 3.6 B × 16 B ≈ 58 GB.
        assert!(bytes > 55_000_000_000 && bytes < 62_000_000_000, "{bytes}");
        // ≈ 2.9 s at 20 GB/s.
        let secs = model.checkpoint_seconds(&cfg);
        assert!(secs > 2.0 && secs < 4.0, "{secs}");
    }

    #[test]
    fn young_daly_interval_and_goodput_are_sane() {
        let model = ReliabilityModel::default();
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let plan = model.plan(&topo, &ParameterGroup::table2(3).config);
        assert!(plan.interval_seconds >= plan.checkpoint_seconds);
        // 4-node fleet at 1000 h/node MTBF: failures are rare; goodput
        // must be high but below 1.
        assert!(
            plan.goodput > 0.95 && plan.goodput < 1.0,
            "{}",
            plan.goodput
        );
        // τ = √(2·δ·MTBF) exactly, when above the δ floor.
        let expect = (2.0 * plan.checkpoint_seconds * plan.job_mtbf_seconds).sqrt();
        assert!((plan.interval_seconds - expect).abs() < 1e-9);
    }

    #[test]
    fn bigger_models_and_fleets_lower_goodput() {
        let model = ReliabilityModel::default();
        let small = model
            .plan(
                &presets::homogeneous(NicType::InfiniBand, 4),
                &ParameterGroup::table2(1).config,
            )
            .goodput;
        let large = model
            .plan(
                &presets::hybrid_split(6, 6),
                &ParameterGroup::table2(7).config,
            )
            .goodput;
        assert!(large < small, "large-fleet goodput {large} vs {small}");
    }

    #[test]
    fn flaky_fleet_degrades_goodput_sharply() {
        let flaky = ReliabilityModel {
            node_mtbf_hours: 24.0, // a node dies daily
            ..ReliabilityModel::default()
        };
        let topo = presets::hybrid_split(6, 6);
        let plan = flaky.plan(&topo, &ParameterGroup::table2(7).config);
        assert!(plan.goodput < 0.9, "{}", plan.goodput);
        assert!(plan.goodput > 0.0);
    }

    #[test]
    fn simulated_goodput_is_deterministic_in_the_seed() {
        let model = ReliabilityModel::default();
        let topo = presets::hybrid_split(4, 4);
        let cfg = ParameterGroup::table2(3).config;
        let horizon = 50.0 * model.job_mtbf_seconds(&topo);
        let a = model.simulated_goodput(&topo, &cfg, 7, horizon);
        let b = model.simulated_goodput(&topo, &cfg, 7, horizon);
        assert_eq!(a, b);
        let c = model.simulated_goodput(&topo, &cfg, 8, horizon);
        assert_ne!(a.failures, 0);
        assert!(a.failures != c.failures || a.goodput != c.goodput);
    }

    #[test]
    fn simulated_goodput_tracks_the_analytic_plan() {
        let model = ReliabilityModel::default();
        let topo = presets::hybrid_split(4, 4);
        let cfg = ParameterGroup::table2(3).config;
        let plan = model.plan(&topo, &cfg);
        // Long horizon: Poisson sampling noise in the measured goodput
        // shrinks as 1/√failures; 200 MTBFs keeps it within ±0.02.
        let horizon = 200.0 * plan.job_mtbf_seconds;
        let trace = model.simulated_goodput(&topo, &cfg, 42, horizon);
        assert!(trace.failures > 100, "{}", trace.failures);
        assert!(trace.checkpoints > trace.failures);
        assert!(
            (trace.goodput - plan.goodput).abs() < 0.02,
            "simulated {} vs analytic {}",
            trace.goodput,
            plan.goodput
        );
    }

    #[test]
    fn simulated_goodput_with_reliable_nodes_approaches_checkpoint_bound() {
        // Near-infinite MTBF: no failures land in the horizon, so the
        // only overhead is the checkpoint duty cycle δ/(τ+δ).
        let model = ReliabilityModel {
            node_mtbf_hours: 1e12,
            ..ReliabilityModel::default()
        };
        let topo = presets::hybrid_split(4, 4);
        let cfg = ParameterGroup::table2(3).config;
        let plan = model.plan(&topo, &cfg);
        let horizon = 10_000.0 * (plan.interval_seconds + plan.checkpoint_seconds);
        let trace = model.simulated_goodput(&topo, &cfg, 3, horizon);
        assert_eq!(trace.failures, 0);
        let duty = plan.interval_seconds / (plan.interval_seconds + plan.checkpoint_seconds);
        assert!((trace.goodput - duty).abs() < 1e-3, "{}", trace.goodput);
    }

    #[test]
    fn quick_node_return_favours_waiting() {
        // The node comes back in 5 minutes; re-sharding would run the
        // whole 4 h window at 7/8 throughput.
        let policy = ElasticPolicy {
            node_return_seconds: 300.0,
            ..ElasticPolicy::default()
        };
        let topo = presets::hybrid_split(4, 4);
        let cfg = ParameterGroup::table2(3).config;
        let impact = ChurnImpact {
            surviving_fraction: 7.0 / 8.0,
            reshard_stall_seconds: 60.0,
        };
        let d = policy.decide(&topo, &cfg, &impact, 5);
        assert_eq!(d.action, ElasticAction::Wait);
        assert!(d.wait_goodput > d.reshard_goodput);
    }

    #[test]
    fn slow_node_return_favours_resharding() {
        // The replacement takes 2 h; losing 1/8 of throughput for the
        // window beats stalling half of it.
        let policy = ElasticPolicy {
            node_return_seconds: 2.0 * 3600.0,
            ..ElasticPolicy::default()
        };
        let topo = presets::hybrid_split(4, 4);
        let cfg = ParameterGroup::table2(3).config;
        let impact = ChurnImpact {
            surviving_fraction: 7.0 / 8.0,
            reshard_stall_seconds: 60.0,
        };
        let d = policy.decide(&topo, &cfg, &impact, 5);
        assert_eq!(d.action, ElasticAction::Reshard);
        assert!(d.reshard_goodput > d.wait_goodput);
        assert!(
            d.reshard_goodput > d.restore_goodput,
            "a 60 s migration beats replaying half a checkpoint interval"
        );
    }

    #[test]
    fn pathological_migration_falls_back_to_checkpoint_restore() {
        // The state migration would stall longer than the checkpoint
        // rework (e.g. huge shards over a flooded trunk): restore wins.
        let policy = ElasticPolicy {
            node_return_seconds: 3.0 * 3600.0,
            ..ElasticPolicy::default()
        };
        let topo = presets::hybrid_split(4, 4);
        let cfg = ParameterGroup::table2(3).config;
        let impact = ChurnImpact {
            surviving_fraction: 7.0 / 8.0,
            reshard_stall_seconds: 3600.0,
        };
        let d = policy.decide(&topo, &cfg, &impact, 5);
        assert_eq!(d.action, ElasticAction::Restore);
    }

    #[test]
    fn trace_driven_decision_matches_analytic_young_daly_within_0_02() {
        // Acceptance criterion: the simulated_goodput-driven decision and
        // the analytic Young/Daly expansion agree within ±0.02 goodput on
        // every candidate, and pick the same action away from knife-edge
        // margins.
        let topo = presets::hybrid_split(4, 4);
        let cfg = ParameterGroup::table2(3).config;
        for (ret, stall) in [(300.0, 60.0), (7200.0, 60.0), (10800.0, 3600.0)] {
            let policy = ElasticPolicy {
                node_return_seconds: ret,
                ..ElasticPolicy::default()
            };
            let impact = ChurnImpact {
                surviving_fraction: 7.0 / 8.0,
                reshard_stall_seconds: stall,
            };
            let traced = policy.decide(&topo, &cfg, &impact, 42);
            let analytic = policy.decide_analytic(&topo, &cfg, &impact);
            for (t, a) in [
                (traced.baseline_goodput, analytic.baseline_goodput),
                (traced.wait_goodput, analytic.wait_goodput),
                (traced.reshard_goodput, analytic.reshard_goodput),
                (traced.restore_goodput, analytic.restore_goodput),
            ] {
                assert!((t - a).abs() < 0.02, "traced {t} vs analytic {a}");
            }
            assert_eq!(traced.action, analytic.action);
        }
    }

    #[test]
    fn elastic_decision_is_deterministic_in_the_seed() {
        let topo = presets::hybrid_split(4, 4);
        let cfg = ParameterGroup::table2(3).config;
        let policy = ElasticPolicy::default();
        let impact = ChurnImpact {
            surviving_fraction: 0.875,
            reshard_stall_seconds: 120.0,
        };
        let a = policy.decide(&topo, &cfg, &impact, 9);
        let b = policy.decide(&topo, &cfg, &impact, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn effective_throughput_scales_by_goodput() {
        let model = ReliabilityModel::default();
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let plan = model.plan(&topo, &ParameterGroup::table2(1).config);
        let eff = plan.effective_throughput(100.0);
        assert!((eff - 100.0 * plan.goodput).abs() < 1e-12);
    }
}
