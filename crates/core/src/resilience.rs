//! Resilience experiment family: run a full planned iteration under a
//! deterministic fault preset and report how the stack degrades and
//! recovers.
//!
//! Each preset compares two executions of the *same* plan on the *same*
//! fabric: a clean baseline and a faulted run. The faulted run exercises
//! the whole recovery path — netsim link-health transitions, the engine's
//! timeout/retry/backoff machinery, TCP fallback on NIC loss, and (when a
//! NIC is actually lost) the parallel layer's
//! [`replan_on_nic_loss`](holmes_parallel::NicSelectionReport::replan_on_nic_loss)
//! downgrade pass. Everything is deterministic in `(topology, parameter
//! group, preset, seed)`: the same seed reproduces the same fault times
//! and therefore a byte-identical [`ResilienceReport::event_log`].

use holmes_engine::{
    simulate_iteration_observed, simulate_iteration_with_faults, DegradedCondition, DpSyncStrategy,
    FaultPlan, FaultWindow, TrainingMetrics,
};
use holmes_model::CommVolumes;
use holmes_netsim::{LinkHealth, SimDuration, SimTime};
use holmes_obs::{Layer, ObsSession};
use holmes_parallel::ReplanOutcome;
use holmes_topology::Topology;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::HolmesConfig;
use crate::planner::{plan_for, PlanRequest};
use crate::runner::RunError;

/// A named fault scenario, placed relative to the clean iteration length
/// so the fault always lands mid-iteration regardless of workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPreset {
    /// No faults: the baseline the other presets are measured against.
    Clean,
    /// The inter-cluster trunk repeatedly degrades to a small fraction
    /// of nominal capacity and recovers (a flapping long-haul link).
    /// The run completes without retries — the timeline just stretches.
    FlakyTrunk,
    /// Node 0 loses its RDMA NIC mid-iteration and never gets it back:
    /// parked flows time out, fall back to TCP over Ethernet, and the
    /// DP groups touching the node are downgraded by the re-planning
    /// pass (paper §3.2 fallback, applied at runtime).
    DyingNic,
}

impl FaultPreset {
    /// All presets, in the order the bench reports them.
    pub const ALL: [FaultPreset; 3] = [
        FaultPreset::Clean,
        FaultPreset::FlakyTrunk,
        FaultPreset::DyingNic,
    ];

    /// Stable name used in logs and BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultPreset::Clean => "clean",
            FaultPreset::FlakyTrunk => "flaky_trunk",
            FaultPreset::DyingNic => "dying_nic",
        }
    }

    /// Trunk faults need a trunk link to act on; both the clean and the
    /// faulted run of a preset share the fabric shape.
    fn needs_trunk(self) -> bool {
        matches!(self, FaultPreset::FlakyTrunk)
    }

    /// Build the fault plan, with fault times seeded and placed relative
    /// to the measured clean iteration length.
    fn build_plan(self, seed: u64, clean_seconds: f64, trunk: Option<f64>) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.trunk_bytes_per_sec = trunk;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut uniform = |lo: f64, hi: f64| {
            let u: f64 = rng.random();
            lo + (hi - lo) * u
        };
        let at = |secs: f64| SimTime::ZERO + SimDuration::from_secs_f64(secs);
        match self {
            FaultPreset::Clean => {}
            FaultPreset::FlakyTrunk => {
                // Three flaps to 10% capacity, each covering ~15% of the
                // clean iteration, jittered by the seed.
                for flap in 0..3u32 {
                    let base = (0.1 + 0.3 * f64::from(flap)) * clean_seconds;
                    let start = base + uniform(0.0, 0.05) * clean_seconds;
                    let len = uniform(0.10, 0.15) * clean_seconds;
                    plan.degrade_trunk(at(start), at(start + len), 0.1);
                }
            }
            FaultPreset::DyingNic => {
                let start = uniform(0.1, 0.4) * clean_seconds;
                plan.kill_nic(at(start), 0);
            }
        }
        plan
    }
}

/// Outcome of one resilience scenario: a clean baseline, a faulted run,
/// and everything the stack did to survive it.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// The preset that was run.
    pub preset: FaultPreset,
    /// Seed that placed the fault times.
    pub seed: u64,
    /// Clean-iteration wall-clock (same plan, same fabric, no faults).
    pub clean_seconds: f64,
    /// Faulted-iteration wall-clock.
    pub faulted_seconds: f64,
    /// Metrics of the faulted run.
    pub metrics: TrainingMetrics,
    /// Link-level unhealthy windows observed by the executor.
    pub fault_windows: Vec<FaultWindow>,
    /// Conditions the executor reacted to (lost NICs, degraded links,
    /// stragglers).
    pub degraded_conditions: Vec<DegradedCondition>,
    /// Flow timeout firings across the faulted run.
    pub flow_retries: u64,
    /// Flows rerouted over TCP after a NIC loss.
    pub tcp_fallback_flows: u64,
    /// The parallel layer's downgrade pass, when a NIC was actually
    /// declared lost mid-run.
    pub replan: Option<ReplanOutcome>,
    /// Deterministic, line-oriented record of the run — byte-identical
    /// across runs with the same inputs and seed.
    pub event_log: Vec<String>,
}

impl ResilienceReport {
    /// Wall-clock stretch of the faulted run over the clean baseline.
    pub fn slowdown(&self) -> f64 {
        if self.clean_seconds > 0.0 {
            self.faulted_seconds / self.clean_seconds
        } else {
            1.0
        }
    }

    /// The event log as one newline-joined string (for byte comparison).
    pub fn log_text(&self) -> String {
        let mut s = self.event_log.join("\n");
        s.push('\n');
        s
    }
}

/// Run one fault preset for a Table 2 parameter group on a topology.
///
/// The plan is the full Holmes plan ([`HolmesConfig::full`]); the clean
/// baseline and the faulted run share it, along with the fabric shape
/// (including the trunk, for presets that fault it). Fault onsets are
/// placed relative to the measured clean iteration so they always land
/// mid-iteration.
pub fn run_resilient(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
) -> Result<ResilienceReport, RunError> {
    run_resilient_inner(topo, parameter_group, preset, seed, None)
}

/// [`run_resilient`] with the *faulted* run instrumented into `session`.
///
/// The clean baseline stays unobserved so the trace shows exactly one
/// iteration's worth of spans. On top of the engine/netsim instrumentation
/// the core layer contributes: `core.*` gauges for the clean/faulted
/// wall-clocks and slowdown, a [`Layer::Core`] instant per degraded
/// condition the executor reacted to, and — when a NIC loss triggered the
/// parallel layer's downgrade pass —
/// [`holmes_parallel::obs::record_replan`].
pub fn run_resilient_observed(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
    session: &mut ObsSession,
) -> Result<ResilienceReport, RunError> {
    run_resilient_inner(topo, parameter_group, preset, seed, Some(session))
}

fn run_resilient_inner(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
    mut obs: Option<&mut ObsSession>,
) -> Result<ResilienceReport, RunError> {
    let cfg = HolmesConfig::full();
    let request = PlanRequest::parameter_group(parameter_group);
    let (plan, engine_cfg) = plan_for(topo, &request, &cfg, DpSyncStrategy::DistributedOptimizer)
        .map_err(RunError::Plan)?;

    let trunk = preset
        .needs_trunk()
        .then(|| topo.inter_cluster_profile().effective_bytes_per_sec());
    let mut clean_plan = FaultPlan::none();
    clean_plan.trunk_bytes_per_sec = trunk;
    let (clean_report, _) =
        simulate_iteration_with_faults(topo, &plan, &request.job, &engine_cfg, &clean_plan)
            .map_err(RunError::Engine)?;

    let fault_plan = preset.build_plan(seed, clean_report.total_seconds, trunk);
    let (report, metrics) = match obs.as_deref_mut() {
        Some(session) => simulate_iteration_observed(
            topo,
            &plan,
            &request.job,
            &engine_cfg,
            Some(&fault_plan),
            session,
        )
        .map_err(RunError::Engine)?,
        None => simulate_iteration_with_faults(topo, &plan, &request.job, &engine_cfg, &fault_plan)
            .map_err(RunError::Engine)?,
    };

    // NIC actually lost mid-run → run the parallel layer's downgrade
    // pass, pricing the next iteration's DP sync on the shrunken fleet.
    let mut lost_nodes: Vec<u32> = report
        .degraded_conditions
        .iter()
        .filter_map(|c| match c {
            DegradedCondition::LostNic { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    lost_nodes.sort_unstable();
    lost_nodes.dedup();
    let replan = (!lost_nodes.is_empty()).then(|| {
        let degrees = plan.degrees();
        let stage_params =
            request.job.config.parameter_count() / u64::from(degrees.pipeline.max(1));
        let grad_bytes = CommVolumes::dp_gradient_bytes(stage_params, degrees.tensor);
        plan.nic_report(topo)
            .replan_on_nic_loss(topo, &lost_nodes, grad_bytes)
    });

    let mut log = Vec::new();
    log.push(format!(
        "preset={} seed={} pg={}",
        preset.name(),
        seed,
        parameter_group
    ));
    log.push(format!(
        "clean_seconds={:?} faulted_seconds={:?}",
        clean_report.total_seconds, report.total_seconds
    ));
    for w in &report.fault_windows {
        log.push(format!(
            "window link={} health={} start={:?} end={:?}",
            w.link.0,
            health_label(w.health),
            w.start_seconds,
            w.end_seconds
        ));
    }
    for c in &report.degraded_conditions {
        log.push(match c {
            DegradedCondition::DegradedLink {
                link,
                fraction,
                at_seconds,
            } => format!(
                "degraded link={} fraction={:?} at={:?}",
                link.0, fraction, at_seconds
            ),
            DegradedCondition::LostNic { node, at_seconds } => {
                format!("lost_nic node={node} at={at_seconds:?}")
            }
            DegradedCondition::Straggler { rank, slowdown } => {
                format!("straggler rank={} slowdown={:?}", rank.0, slowdown)
            }
        });
    }
    log.push(format!(
        "retries={} tcp_fallback={}",
        report.flow_retries, report.tcp_fallback_flows
    ));
    if let Some(r) = &replan {
        log.push(format!(
            "replan downgraded={:?} rdma_groups={} ethernet_groups={} slowdown={:?}",
            r.downgraded_groups,
            r.report.rdma_groups,
            r.report.ethernet_groups,
            r.slowdown()
        ));
    }

    if let Some(session) = obs {
        let reg = &mut session.registry;
        reg.counter_add("core.resilience_runs", 1);
        reg.gauge_set("core.clean_seconds", clean_report.total_seconds);
        reg.gauge_set("core.faulted_seconds", report.total_seconds);
        if clean_report.total_seconds > 0.0 {
            reg.gauge_set(
                "core.resilience_slowdown",
                report.total_seconds / clean_report.total_seconds,
            );
        }
        for c in &report.degraded_conditions {
            // Stragglers are declared during planning, not at a simulated
            // time; they land at t=0 on the trace.
            let (track, name, at) = match c {
                DegradedCondition::DegradedLink {
                    link,
                    fraction,
                    at_seconds,
                } => (
                    u64::from(link.0),
                    format!("degraded-link#{} {:.2}", link.0, fraction),
                    *at_seconds,
                ),
                DegradedCondition::LostNic { node, at_seconds } => (
                    u64::from(*node),
                    format!("lost-nic node{node}"),
                    *at_seconds,
                ),
                DegradedCondition::Straggler { rank, slowdown } => (
                    u64::from(rank.0),
                    format!("straggler rank{} {:.2}", rank.0, slowdown),
                    0.0,
                ),
            };
            session
                .trace
                .instant(Layer::Core, track, name, "resilience", at);
        }
        if let Some(r) = &replan {
            holmes_parallel::obs::record_replan(session, r);
        }
    }

    Ok(ResilienceReport {
        preset,
        seed,
        clean_seconds: clean_report.total_seconds,
        faulted_seconds: report.total_seconds,
        metrics,
        fault_windows: report.fault_windows,
        degraded_conditions: report.degraded_conditions,
        flow_retries: report.flow_retries,
        tcp_fallback_flows: report.tcp_fallback_flows,
        replan,
        event_log: log,
    })
}

fn health_label(h: LinkHealth) -> String {
    match h {
        LinkHealth::Healthy => "healthy".to_string(),
        LinkHealth::Degraded { fraction } => format!("degraded({fraction:?})"),
        LinkHealth::Down => "down".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holmes_topology::presets;

    #[test]
    fn clean_preset_has_no_fault_activity() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::Clean, 11).unwrap();
        assert!(r.fault_windows.is_empty());
        assert!(r.degraded_conditions.is_empty());
        assert_eq!(r.flow_retries, 0);
        assert_eq!(r.tcp_fallback_flows, 0);
        assert!(r.replan.is_none());
        assert!((r.slowdown() - 1.0).abs() < 1e-12, "{}", r.slowdown());
    }

    #[test]
    fn flaky_trunk_stretches_the_run_without_retries() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::FlakyTrunk, 11).unwrap();
        assert!(r.slowdown() > 1.0, "{}", r.slowdown());
        assert!(!r.fault_windows.is_empty());
        // Degraded (not dead) links never trigger retries or fallback.
        assert_eq!(r.tcp_fallback_flows, 0);
        assert!(r.replan.is_none());
    }

    #[test]
    fn dying_nic_completes_via_tcp_fallback_and_replans() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::DyingNic, 7).unwrap();
        // The run completed (no ExecError) despite the permanent NIC
        // loss, slower than clean, with the loss detected and traffic
        // moved to TCP.
        assert!(r.slowdown() > 1.0, "{}", r.slowdown());
        assert!(r.flow_retries >= 1, "{}", r.flow_retries);
        assert!(r.tcp_fallback_flows >= 1, "{}", r.tcp_fallback_flows);
        assert!(r
            .degraded_conditions
            .iter()
            .any(|c| matches!(c, DegradedCondition::LostNic { node: 0, .. })));
        let replan = r.replan.as_ref().expect("NIC loss triggers a replan");
        assert!(!replan.downgraded_groups.is_empty());
        assert!(replan.slowdown() >= 1.0);
    }

    #[test]
    fn observed_resilience_matches_unobserved_and_records_the_recovery() {
        let topo = presets::hybrid_two_cluster(2);
        let plain = run_resilient(&topo, 1, FaultPreset::DyingNic, 7).unwrap();
        let mut session = holmes_obs::ObsSession::new();
        let observed =
            run_resilient_observed(&topo, 1, FaultPreset::DyingNic, 7, &mut session).unwrap();
        // Observation does not change the run.
        assert_eq!(plain.log_text(), observed.log_text());
        // Fault counters flow through the unified registry (satellite 5:
        // registry-backed, not ad-hoc struct fields).
        let reg = &session.registry;
        assert_eq!(reg.counter("engine.flow_retries"), observed.flow_retries);
        assert_eq!(
            reg.counter("engine.tcp_fallback_flows"),
            observed.tcp_fallback_flows
        );
        assert_eq!(reg.counter("core.resilience_runs"), 1);
        assert_eq!(reg.counter("parallel.replans"), 1);
        assert!(reg.gauge("core.resilience_slowdown").unwrap() > 1.0);
        // The lost NIC shows up as a core-layer instant on the trace.
        assert!(session.trace.layers_present().contains(&Layer::Core));
    }

    #[test]
    fn same_seed_reproduces_the_event_log_byte_for_byte() {
        let topo = presets::hybrid_two_cluster(2);
        let a = run_resilient(&topo, 1, FaultPreset::FlakyTrunk, 99).unwrap();
        let b = run_resilient(&topo, 1, FaultPreset::FlakyTrunk, 99).unwrap();
        assert_eq!(a.log_text(), b.log_text());
        let c = run_resilient(&topo, 1, FaultPreset::FlakyTrunk, 100).unwrap();
        assert_ne!(a.log_text(), c.log_text());
    }
}
