//! Resilience experiment family: run a full planned iteration under a
//! deterministic fault preset and report how the stack degrades and
//! recovers.
//!
//! Each preset compares two executions of the *same* plan on the *same*
//! fabric: a clean baseline and a faulted run. The faulted run exercises
//! the whole recovery path — netsim link-health transitions, the engine's
//! timeout/retry/backoff machinery, TCP fallback on NIC loss, and (when a
//! NIC is actually lost) the parallel layer's
//! [`replan_on_nic_loss`](holmes_parallel::NicSelectionReport::replan_on_nic_loss)
//! downgrade pass. Everything is deterministic in `(topology, parameter
//! group, preset, seed)`: the same seed reproduces the same fault times
//! and therefore a byte-identical [`ResilienceReport::event_log`].

use holmes_engine::{
    simulate_iteration_observed, simulate_iteration_with_faults, DegradedCondition, DpSyncStrategy,
    ExecError, FaultPlan, FaultWindow, TrainingMetrics,
};
use holmes_model::CommVolumes;
use holmes_netsim::{ChurnKind, LinkHealth, SimDuration, SimTime};
use holmes_obs::{Layer, ObsSession};
use holmes_parallel::{
    replan_for_delta_with, DeltaReplanOutcome, GuidedPlanner, MigrationCosts, PlacementWorkload,
    ReplanOutcome, TopologyDelta,
};
use holmes_topology::{Rank, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::HolmesConfig;
use crate::planner::{plan_for, PlanRequest};
use crate::reliability::{ChurnImpact, ElasticDecision, ElasticPolicy, ReliabilityModel};
use crate::runner::RunError;

/// A named fault scenario, placed relative to the clean iteration length
/// so the fault always lands mid-iteration regardless of workload.
///
/// Marked `#[non_exhaustive]`: the scenario catalogue grows (this PR
/// alone added three churn presets), so downstream matches must carry a
/// wildcard arm; iterate [`FaultPreset::ALL`] and key on
/// [`FaultPreset::name`] instead of matching exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultPreset {
    /// No faults: the baseline the other presets are measured against.
    Clean,
    /// The inter-cluster trunk repeatedly degrades to a small fraction
    /// of nominal capacity and recovers (a flapping long-haul link).
    /// The run completes without retries — the timeline just stretches.
    FlakyTrunk,
    /// Node 0 loses its RDMA NIC mid-iteration and never gets it back:
    /// parked flows time out, fall back to TCP over Ethernet, and the
    /// DP groups touching the node are downgraded by the re-planning
    /// pass (paper §3.2 fallback, applied at runtime).
    DyingNic,
    /// Two nodes are preempted mid-iteration (a spot-market reclaim
    /// wave). Ring-based DP sync cannot complete without them — the run
    /// aborts and pays a checkpoint restart; the parameter-server
    /// strategy continues degraded on the survivors. This preset is the
    /// PS-vs-all-reduce crossover probe.
    PreemptStorm,
    /// A fresh node announces itself mid-iteration. The running
    /// iteration is unaffected (the newcomer holds no state); the
    /// membership event triggers the migration-aware re-plan that folds
    /// the node in for the next iteration.
    ScaleUpMidrun,
    /// Every GPU on one node runs 2–3× slow (thermal throttling, a bad
    /// HBM stack). Nothing fails; the collectives simply wait.
    StragglerNode,
}

impl FaultPreset {
    /// All presets, in the order the bench reports them.
    pub const ALL: [FaultPreset; 6] = [
        FaultPreset::Clean,
        FaultPreset::FlakyTrunk,
        FaultPreset::DyingNic,
        FaultPreset::PreemptStorm,
        FaultPreset::ScaleUpMidrun,
        FaultPreset::StragglerNode,
    ];

    /// Stable name used in logs and BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultPreset::Clean => "clean",
            FaultPreset::FlakyTrunk => "flaky_trunk",
            FaultPreset::DyingNic => "dying_nic",
            FaultPreset::PreemptStorm => "preempt_storm",
            FaultPreset::ScaleUpMidrun => "scale_up_midrun",
            FaultPreset::StragglerNode => "straggler_node",
        }
    }

    /// Trunk faults need a trunk link to act on; both the clean and the
    /// faulted run of a preset share the fabric shape.
    fn needs_trunk(self) -> bool {
        matches!(self, FaultPreset::FlakyTrunk)
    }

    /// Build the fault plan, with fault times seeded and placed relative
    /// to the measured clean iteration length.
    fn build_plan(
        self,
        seed: u64,
        clean_seconds: f64,
        trunk: Option<f64>,
        topo: &Topology,
    ) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.trunk_bytes_per_sec = trunk;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut uniform = |lo: f64, hi: f64| {
            let u: f64 = rng.random();
            lo + (hi - lo) * u
        };
        let at = |secs: f64| SimTime::ZERO + SimDuration::from_secs_f64(secs);
        match self {
            FaultPreset::Clean => {}
            FaultPreset::FlakyTrunk => {
                // Three flaps to 10% capacity, each covering ~15% of the
                // clean iteration, jittered by the seed.
                for flap in 0..3u32 {
                    let base = (0.1 + 0.3 * f64::from(flap)) * clean_seconds;
                    let start = base + uniform(0.0, 0.05) * clean_seconds;
                    let len = uniform(0.10, 0.15) * clean_seconds;
                    plan.degrade_trunk(at(start), at(start + len), 0.1);
                }
            }
            FaultPreset::DyingNic => {
                let start = uniform(0.1, 0.4) * clean_seconds;
                plan.kill_nic(at(start), 0);
            }
            FaultPreset::PreemptStorm => {
                // The reclaim wave takes the last node of each cluster,
                // a beat apart — the job keeps at least one node per
                // cluster, so the survivors still form a valid fleet.
                let mut node = 0u32;
                for (i, cluster) in topo.clusters().iter().enumerate() {
                    node += cluster.nodes.len() as u32;
                    if cluster.nodes.len() < 2 {
                        continue;
                    }
                    let start =
                        (0.2 + 0.2 * i as f64) * clean_seconds + uniform(0.0, 0.1) * clean_seconds;
                    plan.preempt_node(at(start), node - 1);
                }
            }
            FaultPreset::ScaleUpMidrun => {
                // The joiner gets the first out-of-fabric node index: a
                // pure membership signal to the running iteration.
                let start = uniform(0.3, 0.6) * clean_seconds;
                plan.join_node(at(start), topo.node_count());
            }
            FaultPreset::StragglerNode => {
                // Node 1 throttles: every one of its ranks slows by the
                // same seeded factor.
                let slowdown = uniform(2.0, 3.0);
                let g = topo.gpus_per_node();
                for gpu in 0..g {
                    plan.straggler(Rank(g + gpu), slowdown);
                }
            }
        }
        plan
    }
}

/// A run killed by node churn: ring-based collectives could not continue
/// without the lost ranks, so the job pays a checkpoint restart and
/// replays the iteration on the survivors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnRestart {
    /// The node whose loss killed the run.
    pub node: u32,
    /// When the run died, seconds into the faulted iteration.
    pub at_seconds: f64,
    /// True when the node announced a drain (vs a hard preempt).
    pub draining: bool,
    /// Restart bill: detection/rescheduling overhead plus the checkpoint
    /// read-back, before the replay starts.
    pub restart_seconds: f64,
}

/// Outcome of one resilience scenario: a clean baseline, a faulted run,
/// and everything the stack did to survive it.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// The preset that was run.
    pub preset: FaultPreset,
    /// Seed that placed the fault times.
    pub seed: u64,
    /// Data-parallel sync strategy the run used (the PS-vs-all-reduce
    /// crossover compares reports differing only here).
    pub strategy: DpSyncStrategy,
    /// `Some` when churn killed the run: `faulted_seconds` then covers
    /// the partial run, the restart bill, and the replay.
    pub restart: Option<ChurnRestart>,
    /// The migration-aware re-plan (post-churn placement through the
    /// guided planner plus the simulated state migration), when the run
    /// saw membership churn.
    pub delta_replan: Option<DeltaReplanOutcome>,
    /// The Young/Daly wait-vs-reshard-vs-restore decision for the churn
    /// event, when nodes were lost.
    pub elastic: Option<ElasticDecision>,
    /// Clean-iteration wall-clock (same plan, same fabric, no faults).
    pub clean_seconds: f64,
    /// Faulted-iteration wall-clock.
    pub faulted_seconds: f64,
    /// Metrics of the faulted run.
    pub metrics: TrainingMetrics,
    /// Link-level unhealthy windows observed by the executor.
    pub fault_windows: Vec<FaultWindow>,
    /// Conditions the executor reacted to (lost NICs, degraded links,
    /// stragglers).
    pub degraded_conditions: Vec<DegradedCondition>,
    /// Flow timeout firings across the faulted run.
    pub flow_retries: u64,
    /// Flows rerouted over TCP after a NIC loss.
    pub tcp_fallback_flows: u64,
    /// The parallel layer's downgrade pass, when a NIC was actually
    /// declared lost mid-run.
    pub replan: Option<ReplanOutcome>,
    /// Deterministic, line-oriented record of the run — byte-identical
    /// across runs with the same inputs and seed.
    pub event_log: Vec<String>,
}

impl ResilienceReport {
    /// Wall-clock stretch of the faulted run over the clean baseline.
    pub fn slowdown(&self) -> f64 {
        if self.clean_seconds > 0.0 {
            self.faulted_seconds / self.clean_seconds
        } else {
            1.0
        }
    }

    /// The event log as one newline-joined string (for byte comparison).
    pub fn log_text(&self) -> String {
        let mut s = self.event_log.join("\n");
        s.push('\n');
        s
    }
}

/// Run one fault preset for a Table 2 parameter group on a topology.
///
/// The plan is the full Holmes plan ([`HolmesConfig::full`]); the clean
/// baseline and the faulted run share it, along with the fabric shape
/// (including the trunk, for presets that fault it). Fault onsets are
/// placed relative to the measured clean iteration so they always land
/// mid-iteration.
pub fn run_resilient(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
) -> Result<ResilienceReport, RunError> {
    run_resilient_inner(topo, parameter_group, preset, seed, None, None)
}

/// [`run_resilient`] with an explicit data-parallel sync strategy.
///
/// This is the PS-vs-all-reduce probe: running the same churn preset and
/// seed under [`DpSyncStrategy::ParameterServer`] and a ring-based
/// strategy yields the crossover — the PS run continues degraded where
/// the ring run aborts into a checkpoint restart.
pub fn run_resilient_with_strategy(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
    strategy: DpSyncStrategy,
) -> Result<ResilienceReport, RunError> {
    run_resilient_inner(topo, parameter_group, preset, seed, Some(strategy), None)
}

/// [`run_resilient`] with the *faulted* run instrumented into `session`.
///
/// The clean baseline stays unobserved so the trace shows exactly one
/// iteration's worth of spans. On top of the engine/netsim instrumentation
/// the core layer contributes: `core.*` gauges for the clean/faulted
/// wall-clocks and slowdown, a [`Layer::Core`] instant per degraded
/// condition the executor reacted to, and — when a NIC loss triggered the
/// parallel layer's downgrade pass —
/// [`holmes_parallel::obs::record_replan`].
pub fn run_resilient_observed(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
    session: &mut ObsSession,
) -> Result<ResilienceReport, RunError> {
    run_resilient_inner(topo, parameter_group, preset, seed, None, Some(session))
}

/// [`run_resilient_observed`] with an explicit data-parallel sync
/// strategy — the instrumented form of the PS-vs-all-reduce probe the
/// resilience bench family uses for its crossover rows.
pub fn run_resilient_observed_with_strategy(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
    strategy: DpSyncStrategy,
    session: &mut ObsSession,
) -> Result<ResilienceReport, RunError> {
    run_resilient_inner(
        topo,
        parameter_group,
        preset,
        seed,
        Some(strategy),
        Some(session),
    )
}

fn run_resilient_inner(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
    strategy: Option<DpSyncStrategy>,
    mut obs: Option<&mut ObsSession>,
) -> Result<ResilienceReport, RunError> {
    let cfg = HolmesConfig::full();
    let request = PlanRequest::parameter_group(parameter_group);
    // The full Holmes config prescribes the overlapped optimizer; an
    // explicit strategy (the PS-vs-all-reduce probe) overrides it so the
    // comparison really exercises the requested sync path.
    let (plan, mut engine_cfg) =
        plan_for(topo, &request, &cfg, DpSyncStrategy::DistributedOptimizer)
            .map_err(RunError::Plan)?;
    if let Some(s) = strategy {
        engine_cfg.dp_sync = s;
    }
    let strategy = engine_cfg.dp_sync;
    let reliability = ReliabilityModel::default();

    let trunk = preset
        .needs_trunk()
        .then(|| topo.inter_cluster_profile().effective_bytes_per_sec());
    let mut clean_plan = FaultPlan::none();
    clean_plan.trunk_bytes_per_sec = trunk;
    let (clean_report, clean_metrics) =
        simulate_iteration_with_faults(topo, &plan, &request.job, &engine_cfg, &clean_plan)
            .map_err(RunError::Engine)?;

    let fault_plan = preset.build_plan(seed, clean_report.total_seconds, trunk, topo);
    let sim_result = match obs.as_deref_mut() {
        Some(session) => simulate_iteration_observed(
            topo,
            &plan,
            &request.job,
            &engine_cfg,
            Some(&fault_plan),
            session,
        ),
        None => simulate_iteration_with_faults(topo, &plan, &request.job, &engine_cfg, &fault_plan),
    };
    // Churn that ring-based collectives cannot absorb kills the run: the
    // job pays the restart bill and replays the iteration. Everything
    // else propagates as a real error.
    let restart_bill =
        reliability.restart_overhead_seconds + reliability.checkpoint_seconds(&request.job.config);
    struct FaultedRun {
        total_seconds: f64,
        fault_windows: Vec<FaultWindow>,
        degraded_conditions: Vec<DegradedCondition>,
        flow_retries: u64,
        tcp_fallback_flows: u64,
    }
    let (faulted, metrics, restart) = match sim_result {
        Ok((report, metrics)) => (
            FaultedRun {
                total_seconds: report.total_seconds,
                fault_windows: report.fault_windows,
                degraded_conditions: report.degraded_conditions,
                flow_retries: report.flow_retries,
                tcp_fallback_flows: report.tcp_fallback_flows,
            },
            metrics,
            None,
        ),
        Err(holmes_engine::builder::BuildError::Exec(
            err @ (ExecError::NodeLost { .. } | ExecError::NodeDraining { .. }),
        )) => {
            let (node, at_seconds, draining) = match err {
                ExecError::NodeLost { node, at_seconds } => (node, at_seconds, false),
                ExecError::NodeDraining { node, at_seconds } => (node, at_seconds, true),
                _ => unreachable!(),
            };
            // The run died mid-iteration: the bill is the partial run,
            // the restart, and a full replay on the survivors. Churn
            // events up to the death still happened and are reported.
            let conditions: Vec<DegradedCondition> = fault_plan
                .churn
                .iter()
                .filter(|c| (c.at - SimTime::ZERO).as_secs_f64() <= at_seconds)
                .map(|c| DegradedCondition::NodeChurn {
                    node: c.node,
                    kind: c.kind,
                    at_seconds: (c.at - SimTime::ZERO).as_secs_f64(),
                })
                .collect();
            (
                FaultedRun {
                    total_seconds: at_seconds + restart_bill + clean_report.total_seconds,
                    fault_windows: Vec::new(),
                    degraded_conditions: conditions,
                    flow_retries: 0,
                    tcp_fallback_flows: 0,
                },
                clean_metrics,
                Some(ChurnRestart {
                    node,
                    at_seconds,
                    draining,
                    restart_seconds: restart_bill,
                }),
            )
        }
        Err(e) => return Err(RunError::Engine(e)),
    };

    // NIC actually lost mid-run → run the parallel layer's downgrade
    // pass, pricing the next iteration's DP sync on the shrunken fleet.
    let mut lost_nodes: Vec<u32> = faulted
        .degraded_conditions
        .iter()
        .filter_map(|c| match c {
            DegradedCondition::LostNic { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    lost_nodes.sort_unstable();
    lost_nodes.dedup();
    let degrees = plan.degrees();
    let stage_params = request.job.config.parameter_count() / u64::from(degrees.pipeline.max(1));
    let grad_bytes = CommVolumes::dp_gradient_bytes(stage_params, degrees.tensor);
    let replan = (!lost_nodes.is_empty()).then(|| {
        plan.nic_report(topo)
            .replan_on_nic_loss(topo, &lost_nodes, grad_bytes)
    });

    // Membership churn (preempt/drain/join, whether the run survived it
    // or died into a restart) → the migration-aware re-plan: re-run
    // placement on the post-churn topology through the guided planner
    // and price the optimizer-state migration on its fabric, then let
    // the Young/Daly policy judge wait vs re-shard vs restore.
    let mut churn_lost: Vec<u32> = faulted
        .degraded_conditions
        .iter()
        .filter_map(|c| match c {
            DegradedCondition::NodeChurn { node, kind, .. }
                if *kind != ChurnKind::NodeJoin && *node < topo.node_count() =>
            {
                Some(*node)
            }
            _ => None,
        })
        .collect();
    churn_lost.sort_unstable();
    churn_lost.dedup();
    let churn_joins = faulted
        .degraded_conditions
        .iter()
        .filter(|c| {
            matches!(
                c,
                DegradedCondition::NodeChurn {
                    kind: ChurnKind::NodeJoin,
                    ..
                }
            )
        })
        .count();
    let delta_replan = (!churn_lost.is_empty() || churn_joins > 0)
        .then(|| {
            let mut delta = TopologyDelta::new();
            for &n in &churn_lost {
                delta.node_loss(n);
            }
            for _ in 0..churn_joins {
                // Joiners carry no placement hint; they land in cluster 0
                // by convention (the re-plan decides what runs on them).
                delta.node_join(0);
            }
            // Per-rank optimizer shard: the stage's mixed-precision Adam
            // state split across the tensor degree.
            let state_bytes_per_rank = (stage_params / u64::from(degrees.tensor.max(1)))
                * holmes_model::BYTES_PER_PARAM_FULL;
            let costs = MigrationCosts::new(state_bytes_per_rank, restart_bill);
            // Mixed-generation fleets re-plan against the two-axis
            // workload so churn migrations avoid generation-straddling
            // DP groups; uniform fleets keep the historical
            // gradient-only pricing bit-for-bit.
            let workload = if topo.uniform_compute() {
                PlacementWorkload::gradient_only(grad_bytes)
            } else {
                PlacementWorkload::new(
                    grad_bytes,
                    crate::planner::placement_stage_flops(&request.job, degrees),
                )
            };
            let outcome =
                replan_for_delta_with(topo, &plan, &delta, workload, &GuidedPlanner, &costs).ok();
            // Replan reachability gate: the churn re-plan must itself
            // verify, and every state move must be executable on the
            // post-churn fabric, before anything acts on it.
            #[cfg(debug_assertions)]
            if let Some(o) = &outcome {
                let defects = holmes_analysis::verify_replan_progress(o);
                assert!(
                    defects.is_empty(),
                    "churn re-plan fails the progress verifier: {defects:?}"
                );
            }
            outcome
        })
        .flatten();
    let elastic = delta_replan
        .as_ref()
        .filter(|_| !churn_lost.is_empty())
        .map(|outcome| {
            let capacity = f64::from(outcome.new_topology.device_count())
                / f64::from(topo.device_count().max(1));
            let sync_factor = if outcome.cost_after_seconds > 0.0 {
                (outcome.cost_before_seconds / outcome.cost_after_seconds).min(1.0)
            } else {
                1.0
            };
            let impact = ChurnImpact {
                surviving_fraction: capacity * sync_factor,
                reshard_stall_seconds: outcome.migration.total_seconds(),
            };
            ElasticPolicy::default().decide(topo, &request.job.config, &impact, seed)
        });

    let mut log = Vec::new();
    log.push(format!(
        "preset={} seed={} pg={} strategy={}",
        preset.name(),
        seed,
        parameter_group,
        strategy.name()
    ));
    log.push(format!(
        "clean_seconds={:?} faulted_seconds={:?}",
        clean_report.total_seconds, faulted.total_seconds
    ));
    for w in &faulted.fault_windows {
        log.push(format!(
            "window link={} health={} start={:?} end={:?}",
            w.link.0,
            health_label(w.health),
            w.start_seconds,
            w.end_seconds
        ));
    }
    for c in &faulted.degraded_conditions {
        log.push(match c {
            DegradedCondition::DegradedLink {
                link,
                fraction,
                at_seconds,
            } => format!(
                "degraded link={} fraction={:?} at={:?}",
                link.0, fraction, at_seconds
            ),
            DegradedCondition::LostNic { node, at_seconds } => {
                format!("lost_nic node={node} at={at_seconds:?}")
            }
            DegradedCondition::Straggler { rank, slowdown } => {
                format!("straggler rank={} slowdown={:?}", rank.0, slowdown)
            }
            DegradedCondition::NodeChurn {
                node,
                kind,
                at_seconds,
            } => format!("churn node={node} kind={} at={at_seconds:?}", kind.name()),
        });
    }
    log.push(format!(
        "retries={} tcp_fallback={}",
        faulted.flow_retries, faulted.tcp_fallback_flows
    ));
    if let Some(r) = &restart {
        log.push(format!(
            "restart node={} draining={} at={:?} bill={:?}",
            r.node, r.draining, r.at_seconds, r.restart_seconds
        ));
    }
    if let Some(r) = &replan {
        log.push(format!(
            "replan downgraded={:?} rdma_groups={} ethernet_groups={} slowdown={:?}",
            r.downgraded_groups,
            r.report.rdma_groups,
            r.report.ethernet_groups,
            r.slowdown()
        ));
    }
    if let Some(o) = &delta_replan {
        log.push(format!(
            "delta_replan devices={} moves={} restored={:?} transfer={:?} restore={:?} cost_before={:?} cost_after={:?}",
            o.new_topology.device_count(),
            o.migration.moves.len(),
            o.migration.restored_groups,
            o.migration.transfer_seconds,
            o.migration.restore_seconds,
            o.cost_before_seconds,
            o.cost_after_seconds
        ));
    }
    if let Some(e) = &elastic {
        log.push(format!(
            "elastic action={} wait={:?} reshard={:?} restore={:?}",
            e.action.name(),
            e.wait_goodput,
            e.reshard_goodput,
            e.restore_goodput
        ));
    }

    if let Some(session) = obs {
        let reg = &mut session.registry;
        reg.counter_add("core.resilience_runs", 1);
        reg.gauge_set("core.clean_seconds", clean_report.total_seconds);
        reg.gauge_set("core.faulted_seconds", faulted.total_seconds);
        if clean_report.total_seconds > 0.0 {
            reg.gauge_set(
                "core.resilience_slowdown",
                faulted.total_seconds / clean_report.total_seconds,
            );
        }
        if restart.is_some() {
            reg.counter_add("core.churn_restarts", 1);
        }
        if let Some(o) = &delta_replan {
            reg.counter_add("core.churn_replans", 1);
            reg.gauge_set("core.migration_seconds", o.migration.total_seconds());
        }
        for c in &faulted.degraded_conditions {
            // Stragglers are declared during planning, not at a simulated
            // time; they land at t=0 on the trace.
            let (track, name, at) = match c {
                DegradedCondition::DegradedLink {
                    link,
                    fraction,
                    at_seconds,
                } => (
                    u64::from(link.0),
                    format!("degraded-link#{} {:.2}", link.0, fraction),
                    *at_seconds,
                ),
                DegradedCondition::LostNic { node, at_seconds } => (
                    u64::from(*node),
                    format!("lost-nic node{node}"),
                    *at_seconds,
                ),
                DegradedCondition::Straggler { rank, slowdown } => (
                    u64::from(rank.0),
                    format!("straggler rank{} {:.2}", rank.0, slowdown),
                    0.0,
                ),
                DegradedCondition::NodeChurn {
                    node,
                    kind,
                    at_seconds,
                } => (
                    u64::from(*node),
                    format!("churn node{node} {}", kind.name()),
                    *at_seconds,
                ),
            };
            session
                .trace
                .instant(Layer::Core, track, name, "resilience", at);
        }
        if let Some(r) = &replan {
            holmes_parallel::obs::record_replan(session, r);
        }
    }

    Ok(ResilienceReport {
        preset,
        seed,
        strategy,
        restart,
        delta_replan,
        elastic,
        clean_seconds: clean_report.total_seconds,
        faulted_seconds: faulted.total_seconds,
        metrics,
        fault_windows: faulted.fault_windows,
        degraded_conditions: faulted.degraded_conditions,
        flow_retries: faulted.flow_retries,
        tcp_fallback_flows: faulted.tcp_fallback_flows,
        replan,
        event_log: log,
    })
}

fn health_label(h: LinkHealth) -> String {
    match h {
        LinkHealth::Healthy => "healthy".to_string(),
        LinkHealth::Degraded { fraction } => format!("degraded({fraction:?})"),
        LinkHealth::Down => "down".to_string(),
    }
}

/// Symbolically verify a fault preset before (or without) ever running
/// it: plan the workload exactly as [`run_resilient`] would, build the
/// iteration's execution spec, and model-check its collectives twice —
///
/// 1. against exactly the events the preset's seeded [`FaultPlan`] can
///    produce, under the executor's own retry-arming rule; and
/// 2. against the full enumerated event space bounded by `space`, with
///    the default retry model armed (the machinery exists whether or not
///    this particular plan triggers it — the sweep asks whether *any*
///    in-scope fault could stall or livelock the schedule).
///
/// Returns the merged [`holmes_analysis::ProgressReport`]; a clean
/// report is a proof (within the small-scope event bounds) that every
/// collective of the planned iteration makes progress under the preset.
pub fn verify_preset_progress(
    topo: &Topology,
    parameter_group: u8,
    preset: FaultPreset,
    seed: u64,
    space: holmes_analysis::EventSpace,
) -> Result<holmes_analysis::ProgressReport, RunError> {
    let cfg = HolmesConfig::full();
    let request = PlanRequest::parameter_group(parameter_group);
    let (plan, engine_cfg) = plan_for(topo, &request, &cfg, DpSyncStrategy::DistributedOptimizer)
        .map_err(RunError::Plan)?;

    let trunk = preset
        .needs_trunk()
        .then(|| topo.inter_cluster_profile().effective_bytes_per_sec());
    let mut clean_plan = FaultPlan::none();
    clean_plan.trunk_bytes_per_sec = trunk;
    let (clean_report, _) =
        simulate_iteration_with_faults(topo, &plan, &request.job, &engine_cfg, &clean_plan)
            .map_err(RunError::Engine)?;
    let fault_plan = preset.build_plan(seed, clean_report.total_seconds, trunk, topo);

    let spec = holmes_engine::build_iteration(topo, &plan, &request.job, &engine_cfg)
        .map_err(RunError::Engine)?;

    // Pass 1: the preset's own events, executor-faithful retry arming.
    let mut report = holmes_engine::progress::check_execution(topo, &spec, Some(&fault_plan));

    // Pass 2: the generic event space with retry machinery armed.
    let mut pspec = holmes_engine::progress::progress_spec(topo, &spec, Some(&fault_plan));
    pspec.retry = Some(holmes_analysis::RetryModel::default());
    let sweep = holmes_analysis::check_progress(topo, &pspec, space);

    report.scenarios += sweep.scenarios;
    report.skipped += sweep.skipped;
    report.completes += sweep.completes;
    report.completes_degraded += sweep.completes_degraded;
    report.fails_fast += sweep.fails_fast;
    report.counterexamples.extend(sweep.counterexamples);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holmes_topology::presets;

    #[test]
    fn clean_preset_has_no_fault_activity() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::Clean, 11).unwrap();
        assert!(r.fault_windows.is_empty());
        assert!(r.degraded_conditions.is_empty());
        assert_eq!(r.flow_retries, 0);
        assert_eq!(r.tcp_fallback_flows, 0);
        assert!(r.replan.is_none());
        assert!((r.slowdown() - 1.0).abs() < 1e-12, "{}", r.slowdown());
    }

    #[test]
    fn flaky_trunk_stretches_the_run_without_retries() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::FlakyTrunk, 11).unwrap();
        assert!(r.slowdown() > 1.0, "{}", r.slowdown());
        assert!(!r.fault_windows.is_empty());
        // Degraded (not dead) links never trigger retries or fallback.
        assert_eq!(r.tcp_fallback_flows, 0);
        assert!(r.replan.is_none());
    }

    #[test]
    fn dying_nic_completes_via_tcp_fallback_and_replans() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::DyingNic, 7).unwrap();
        // The run completed (no ExecError) despite the permanent NIC
        // loss, slower than clean, with the loss detected and traffic
        // moved to TCP.
        assert!(r.slowdown() > 1.0, "{}", r.slowdown());
        assert!(r.flow_retries >= 1, "{}", r.flow_retries);
        assert!(r.tcp_fallback_flows >= 1, "{}", r.tcp_fallback_flows);
        assert!(r
            .degraded_conditions
            .iter()
            .any(|c| matches!(c, DegradedCondition::LostNic { node: 0, .. })));
        let replan = r.replan.as_ref().expect("NIC loss triggers a replan");
        assert!(!replan.downgraded_groups.is_empty());
        assert!(replan.slowdown() >= 1.0);
    }

    #[test]
    fn observed_resilience_matches_unobserved_and_records_the_recovery() {
        let topo = presets::hybrid_two_cluster(2);
        let plain = run_resilient(&topo, 1, FaultPreset::DyingNic, 7).unwrap();
        let mut session = holmes_obs::ObsSession::new();
        let observed =
            run_resilient_observed(&topo, 1, FaultPreset::DyingNic, 7, &mut session).unwrap();
        // Observation does not change the run.
        assert_eq!(plain.log_text(), observed.log_text());
        // Fault counters flow through the unified registry (satellite 5:
        // registry-backed, not ad-hoc struct fields).
        let reg = &session.registry;
        assert_eq!(reg.counter("engine.flow_retries"), observed.flow_retries);
        assert_eq!(
            reg.counter("engine.tcp_fallback_flows"),
            observed.tcp_fallback_flows
        );
        assert_eq!(reg.counter("core.resilience_runs"), 1);
        assert_eq!(reg.counter("parallel.replans"), 1);
        assert!(reg.gauge("core.resilience_slowdown").unwrap() > 1.0);
        // The lost NIC shows up as a core-layer instant on the trace.
        assert!(session.trace.layers_present().contains(&Layer::Core));
    }

    #[test]
    fn same_seed_reproduces_the_event_log_byte_for_byte() {
        let topo = presets::hybrid_two_cluster(2);
        let a = run_resilient(&topo, 1, FaultPreset::FlakyTrunk, 99).unwrap();
        let b = run_resilient(&topo, 1, FaultPreset::FlakyTrunk, 99).unwrap();
        assert_eq!(a.log_text(), b.log_text());
        let c = run_resilient(&topo, 1, FaultPreset::FlakyTrunk, 100).unwrap();
        assert_ne!(a.log_text(), c.log_text());
    }

    #[test]
    fn preempt_storm_aborts_ring_sync_into_a_restart() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::PreemptStorm, 13).unwrap();
        // Ring-based DP sync cannot continue without the preempted
        // ranks: the run dies at the first preempt and pays the restart
        // bill plus a replay.
        let restart = r.restart.expect("ring sync aborts on preemption");
        assert!(!restart.draining);
        assert!(restart.restart_seconds > 0.0);
        assert!(
            r.faulted_seconds >= restart.at_seconds + restart.restart_seconds + r.clean_seconds
        );
        assert!(r.slowdown() > 2.0, "{}", r.slowdown());
        // The membership event still drives the migration-aware re-plan
        // and the Young/Daly decision.
        assert!(r.delta_replan.is_some());
        assert!(r.elastic.is_some());
    }

    #[test]
    fn preempt_storm_survives_under_parameter_server() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient_with_strategy(
            &topo,
            1,
            FaultPreset::PreemptStorm,
            13,
            DpSyncStrategy::ParameterServer { servers: 2 },
        )
        .unwrap();
        // Star-shaped PS rounds only stale the lost contributions: the
        // survivors finish the iteration without a restart.
        assert!(r.restart.is_none());
        assert!(r
            .degraded_conditions
            .iter()
            .any(|c| matches!(c, DegradedCondition::NodeChurn { .. })));
        let outcome = r.delta_replan.as_ref().expect("preempts trigger a re-plan");
        assert!(outcome.new_topology.device_count() < topo.device_count());
        // Every group kept surviving replicas (each stage lost only half
        // its cluster), so nothing needs the checkpoint store — and when
        // the new placement keeps survivors in place, the migration may
        // even be zero-move.
        assert!(outcome.migration.restored_groups.is_empty());
        assert_eq!(outcome.migration.restore_seconds, 0.0);
        let elastic = r.elastic.expect("losses get an elastic decision");
        assert!(elastic.reshard_goodput > 0.0);
    }

    #[test]
    fn ps_vs_allreduce_crossover_under_preemption() {
        // Clean, the ring strategy beats the parameter server (the star
        // round pays server incast). Under a preempt storm the ordering
        // flips: the PS run continues degraded while the ring run eats a
        // checkpoint restart. This crossover is the reason to keep both.
        let topo = presets::hybrid_two_cluster(2);
        let ps = DpSyncStrategy::ParameterServer { servers: 2 };
        let ar = DpSyncStrategy::DistributedOptimizer;
        let clean_ar = run_resilient_with_strategy(&topo, 1, FaultPreset::Clean, 13, ar).unwrap();
        let clean_ps = run_resilient_with_strategy(&topo, 1, FaultPreset::Clean, 13, ps).unwrap();
        let storm_ar =
            run_resilient_with_strategy(&topo, 1, FaultPreset::PreemptStorm, 13, ar).unwrap();
        let storm_ps =
            run_resilient_with_strategy(&topo, 1, FaultPreset::PreemptStorm, 13, ps).unwrap();
        assert!(
            clean_ar.faulted_seconds <= clean_ps.faulted_seconds,
            "clean: ring {} vs ps {}",
            clean_ar.faulted_seconds,
            clean_ps.faulted_seconds
        );
        assert!(
            storm_ps.faulted_seconds < storm_ar.faulted_seconds,
            "storm: ps {} vs ring {}",
            storm_ps.faulted_seconds,
            storm_ar.faulted_seconds
        );
        assert!(storm_ar.restart.is_some() && storm_ps.restart.is_none());
    }

    #[test]
    fn scale_up_midrun_folds_the_new_node_in() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::ScaleUpMidrun, 21).unwrap();
        // The running iteration is unaffected by the announcement…
        assert!(r.restart.is_none());
        assert!((r.slowdown() - 1.0).abs() < 1e-9, "{}", r.slowdown());
        // …but the membership event drives the migration-aware re-plan
        // that seeds the newcomer's optimizer state.
        let outcome = r.delta_replan.as_ref().expect("join triggers a re-plan");
        assert_eq!(
            outcome.new_topology.device_count(),
            topo.device_count() + topo.gpus_per_node()
        );
        assert!(!outcome.migration.moves.is_empty());
        // A join loses nothing: wait-vs-reshard doesn't apply.
        assert!(r.elastic.is_none());
    }

    #[test]
    fn straggler_node_stretches_the_run_without_faults() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_resilient(&topo, 1, FaultPreset::StragglerNode, 17).unwrap();
        assert!(r.slowdown() > 1.2, "{}", r.slowdown());
        assert!(r.restart.is_none());
        assert_eq!(r.flow_retries, 0);
        assert!(r
            .degraded_conditions
            .iter()
            .any(|c| matches!(c, DegradedCondition::Straggler { .. })));
    }

    #[test]
    fn churn_presets_replay_byte_identically_per_seed() {
        let topo = presets::hybrid_two_cluster(2);
        let ps = DpSyncStrategy::ParameterServer { servers: 2 };
        for preset in [FaultPreset::PreemptStorm, FaultPreset::ScaleUpMidrun] {
            let a = run_resilient_with_strategy(&topo, 1, preset, 5, ps).unwrap();
            let b = run_resilient_with_strategy(&topo, 1, preset, 5, ps).unwrap();
            assert_eq!(a.log_text(), b.log_text(), "{}", preset.name());
        }
    }
}
