//! Holmes feature configuration (the knobs of the Table 5 ablation).

/// Which Holmes components are enabled.
///
/// The full framework enables all four; the paper's ablation (Table 5)
/// turns off *Self-Adapting Pipeline Partition* and the *Overlapped
/// Distributed Optimizer* individually and jointly, always keeping
/// *Cross-Cluster Pipeline Parallelism* and *Automatic NIC Selection* on
/// (their effect is shown separately against Megatron-LM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolmesConfig {
    /// NIC-aware device ordering: align pipeline stages with cluster
    /// boundaries (§3.1.2 Cross-Cluster Pipeline Parallelism). When off,
    /// devices are taken in raw hostfile order.
    pub cross_cluster_pp: bool,
    /// Per-group transport selection (§3.2 Automatic NIC Selection). When
    /// off, inter-node traffic uses the job-wide common-denominator
    /// transport (TCP in any heterogeneous environment).
    pub auto_nic_selection: bool,
    /// Eq. 2 layer partitioning (§3.1.2). When off, layers split uniformly.
    pub self_adapting_partition: bool,
    /// Bucketed reduce-scatter overlapped with the final backward (§3.2).
    /// When off, a blocking distributed optimizer is used.
    pub overlapped_optimizer: bool,
    /// Eq. 2 hyper-parameter α (the paper uses 1.05).
    pub alpha: f64,
    /// Gradient buckets for the overlapped optimizer.
    pub buckets: u32,
}

impl Default for HolmesConfig {
    fn default() -> Self {
        HolmesConfig {
            cross_cluster_pp: true,
            auto_nic_selection: true,
            self_adapting_partition: true,
            overlapped_optimizer: true,
            alpha: 1.05,
            buckets: 8,
        }
    }
}

impl HolmesConfig {
    /// Full Holmes.
    pub fn full() -> Self {
        Self::default()
    }

    /// Table 5 row "w/o Self-Adapting-Partition".
    pub fn without_self_adapting() -> Self {
        HolmesConfig {
            self_adapting_partition: false,
            ..Self::default()
        }
    }

    /// Table 5 row "w/o Overlapped Optimizer".
    pub fn without_overlapped_optimizer() -> Self {
        HolmesConfig {
            overlapped_optimizer: false,
            ..Self::default()
        }
    }

    /// Table 5 row "w/o Above Two".
    pub fn without_both() -> Self {
        HolmesConfig {
            self_adapting_partition: false,
            overlapped_optimizer: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = HolmesConfig::default();
        assert!(c.cross_cluster_pp && c.auto_nic_selection);
        assert!(c.self_adapting_partition && c.overlapped_optimizer);
        assert_eq!(c.alpha, 1.05);
    }

    #[test]
    fn ablation_rows_disable_the_right_flags() {
        assert!(!HolmesConfig::without_self_adapting().self_adapting_partition);
        assert!(HolmesConfig::without_self_adapting().overlapped_optimizer);
        assert!(!HolmesConfig::without_overlapped_optimizer().overlapped_optimizer);
        let both = HolmesConfig::without_both();
        assert!(!both.self_adapting_partition && !both.overlapped_optimizer);
        assert!(both.cross_cluster_pp && both.auto_nic_selection);
    }
}
