//! # holmes
//!
//! The Holmes framework (ICPP 2024 reproduction): heterogeneous-NIC-aware
//! scheduling of distributed LLM training, plus emulations of the
//! mainstream frameworks the paper compares against, all running on the
//! `holmes-netsim` simulated substrate.
//!
//! ## Quick start
//!
//! ```
//! use holmes::{run_framework, FrameworkKind};
//! use holmes_topology::presets;
//!
//! // PG1 (3.6 B GPT) on two 2-node clusters: InfiniBand + RoCE, joined
//! // only by Ethernet — the paper's "Hybird" environment.
//! let topo = presets::hybrid_two_cluster(2);
//! let result = run_framework(FrameworkKind::Holmes, &topo, 1).unwrap();
//! println!(
//!     "Holmes: {:.0} TFLOPS/GPU, {:.2} samples/s",
//!     result.metrics.tflops_per_gpu, result.metrics.throughput_samples_per_sec
//! );
//! ```
//!
//! ## Components (paper §3)
//!
//! * **Cross-Cluster Pipeline Parallelism** — pipeline groups span cluster
//!   boundaries so only activation traffic crosses slow Ethernet;
//! * **Automatic NIC Selection** — data-parallel groups confined to
//!   NIC-homogeneous device sets, restoring RDMA;
//! * **Self-Adapting Pipeline Partition** — Eq. 2 layer allocation
//!   proportional to per-stage effective speed (α = 1.05);
//! * **Overlapped Distributed Optimizer** — bucketed reduce-scatter hidden
//!   under the final backward.
//!
//! Each component is a flag in [`HolmesConfig`], enabling the paper's
//! Table 5 ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod calibration;
mod config;
pub mod estimate;
mod framework;
mod planner;
pub mod reliability;
mod report;
pub mod resilience;
mod runner;
pub mod training;

pub use autotune::{autotune, autotune_with_mode, record_autotune, AutotuneRequest, Candidate};
pub use config::HolmesConfig;
pub use estimate::{estimate_iteration, IterationEstimate};
pub use framework::FrameworkKind;
pub use holmes_parallel::EvalMode;
pub use planner::{
    placement_gradient_bytes, placement_layer_flops, placement_stage_flops, plan_for,
    plan_for_with, PlanError, PlanRequest,
};
pub use reliability::{
    CheckpointPlan, ChurnImpact, ElasticAction, ElasticDecision, ElasticPolicy, GoodputTrace,
    ReliabilityModel,
};
pub use report::TableBuilder;
pub use resilience::{
    run_resilient, run_resilient_observed, run_resilient_observed_with_strategy,
    run_resilient_with_strategy, verify_preset_progress, ChurnRestart, FaultPreset,
    ResilienceReport,
};
pub use runner::{
    run_framework, run_framework_observed, run_holmes_with, run_scenario, run_scenario_observed,
    RunError, RunResult, Scenario,
};
pub use training::{simulate_training_run, TrainingRunConfig, TrainingRunReport};

// Re-export the substrate crates so downstream users need one dependency.
pub use holmes_engine as engine;
pub use holmes_model as model;
pub use holmes_netsim as netsim;
pub use holmes_obs as obs;
pub use holmes_parallel as parallel;
pub use holmes_topology as topology;
