//! End-to-end simulation entry points.

use holmes_engine::{
    simulate_iteration, simulate_iteration_observed, DpSyncStrategy, IterationReport,
    TrainingMetrics,
};
use holmes_obs::ObsSession;
use holmes_parallel::NicSelectionReport;
use holmes_topology::Topology;

use crate::config::HolmesConfig;
use crate::framework::FrameworkKind;
use crate::planner::{plan_for, PlanError, PlanRequest};

/// A complete experimental scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Hardware environment.
    pub topo: Topology,
    /// Workload + model-parallel degrees.
    pub request: PlanRequest,
}

impl Scenario {
    /// Scenario for a Table 2 parameter group on a topology.
    pub fn new(topo: Topology, parameter_group: u8) -> Self {
        Scenario {
            topo,
            request: PlanRequest::parameter_group(parameter_group),
        }
    }
}

/// Result of simulating one training iteration.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// TFLOPS / throughput, exactly as the paper reports them.
    pub metrics: TrainingMetrics,
    /// Detailed timing breakdown.
    pub report: IterationReport,
    /// Automatic-NIC-Selection analysis of the executed plan.
    pub nic: NicSelectionReport,
    /// Layers per pipeline stage actually used.
    pub stage_layers: Vec<u32>,
}

impl RunResult {
    /// A compact human-readable summary of the run.
    pub fn summary(&self) -> String {
        format!(
            "{:.2} s/iter | {:.1} TFLOPS/GPU | {:.2} samples/s | stages {:?} | \
             DP groups on RDMA {}/{}",
            self.metrics.iteration_seconds,
            self.metrics.tflops_per_gpu,
            self.metrics.throughput_samples_per_sec,
            self.stage_layers,
            self.nic.rdma_groups,
            self.nic.groups.len(),
        )
    }
}

/// Errors running a scenario.
#[derive(Debug)]
pub enum RunError {
    /// Planning failed.
    Plan(PlanError),
    /// Building or executing the iteration failed.
    Engine(holmes_engine::builder::BuildError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Plan(e) => write!(f, "planning failed: {e}"),
            RunError::Engine(e) => write!(f, "engine failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Simulate one iteration of a scenario under a Holmes configuration.
///
/// `fallback_dp` selects the gradient-sync strategy when
/// `cfg.overlapped_optimizer` is off.
pub fn run_scenario(
    scenario: &Scenario,
    cfg: &HolmesConfig,
    fallback_dp: DpSyncStrategy,
) -> Result<RunResult, RunError> {
    let (plan, engine_cfg) =
        plan_for(&scenario.topo, &scenario.request, cfg, fallback_dp).map_err(RunError::Plan)?;
    let (report, metrics) =
        simulate_iteration(&scenario.topo, &plan, &scenario.request.job, &engine_cfg)
            .map_err(RunError::Engine)?;
    let nic = plan.nic_report(&scenario.topo);
    Ok(RunResult {
        metrics,
        report,
        nic,
        stage_layers: plan.stage_layers.clone(),
    })
}

/// [`run_scenario`] with the whole stack instrumented into `session`.
///
/// Records, in order: the plan's Automatic-NIC-Selection outcome
/// (planning-clock events under the parallel layer), then the executed
/// iteration — engine timeline spans, netsim flow/link records and the
/// unified metrics registry — via
/// [`holmes_engine::simulate_iteration_observed`]. The returned
/// [`RunResult`] is identical to the unobserved one: observation never
/// changes what the simulator does, only what it remembers.
pub fn run_scenario_observed(
    scenario: &Scenario,
    cfg: &HolmesConfig,
    fallback_dp: DpSyncStrategy,
    session: &mut ObsSession,
) -> Result<RunResult, RunError> {
    let (plan, engine_cfg) =
        plan_for(&scenario.topo, &scenario.request, cfg, fallback_dp).map_err(RunError::Plan)?;
    let nic = plan.nic_report(&scenario.topo);
    holmes_parallel::obs::record_nic_selection(session, &nic);
    let (report, metrics) = simulate_iteration_observed(
        &scenario.topo,
        &plan,
        &scenario.request.job,
        &engine_cfg,
        None,
        session,
    )
    .map_err(RunError::Engine)?;
    session.registry.counter_add("core.runs", 1);
    Ok(RunResult {
        metrics,
        report,
        nic,
        stage_layers: plan.stage_layers.clone(),
    })
}

/// Simulate Holmes with an explicit feature configuration (ablations).
pub fn run_holmes_with(
    cfg: &HolmesConfig,
    topo: &Topology,
    parameter_group: u8,
) -> Result<RunResult, RunError> {
    run_scenario(
        &Scenario::new(topo.clone(), parameter_group),
        cfg,
        // Holmes without the overlapped optimizer still shards the
        // optimizer (it is built on Megatron's distributed optimizer).
        DpSyncStrategy::DistributedOptimizer,
    )
}

/// Simulate one of the compared frameworks on a topology (Figures 6/7).
pub fn run_framework(
    kind: FrameworkKind,
    topo: &Topology,
    parameter_group: u8,
) -> Result<RunResult, RunError> {
    let cfg = kind.as_holmes_flags();
    // DeepSpeed's ZeRO-1 and Holmes's Megatron distributed optimizer both
    // fall back to reduce-scatter + all-gather; only plain Megatron-LM /
    // -LLaMA use legacy DDP all-reduce when overlap is off.
    let fallback = if kind.uses_zero1() || kind == FrameworkKind::Holmes {
        DpSyncStrategy::DistributedOptimizer
    } else {
        DpSyncStrategy::AllReduce
    };
    run_scenario(
        &Scenario::new(topo.clone(), parameter_group),
        &cfg,
        fallback,
    )
}

/// [`run_framework`] with the run instrumented into `session`.
pub fn run_framework_observed(
    kind: FrameworkKind,
    topo: &Topology,
    parameter_group: u8,
    session: &mut ObsSession,
) -> Result<RunResult, RunError> {
    let cfg = kind.as_holmes_flags();
    let fallback = if kind.uses_zero1() || kind == FrameworkKind::Holmes {
        DpSyncStrategy::DistributedOptimizer
    } else {
        DpSyncStrategy::AllReduce
    };
    run_scenario_observed(
        &Scenario::new(topo.clone(), parameter_group),
        &cfg,
        fallback,
        session,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use holmes_topology::{presets, NicType};

    #[test]
    fn holmes_beats_every_baseline_on_hybrid() {
        let topo = presets::hybrid_split(4, 4); // Figure 6's environment
        let tflops = |kind| {
            run_framework(kind, &topo, 3)
                .unwrap()
                .metrics
                .tflops_per_gpu
        };
        let holmes = tflops(FrameworkKind::Holmes);
        let mlm = tflops(FrameworkKind::MegatronLm);
        let mds = tflops(FrameworkKind::MegatronDeepSpeed);
        let mll = tflops(FrameworkKind::MegatronLlama);
        assert!(holmes > mlm, "Holmes {holmes} vs Megatron-LM {mlm}");
        assert!(holmes > mds, "Holmes {holmes} vs Megatron-DeepSpeed {mds}");
        assert!(holmes > mll, "Holmes {holmes} vs Megatron-LLaMA {mll}");
        // Figure 6's secondary observation: Megatron-LLaMA beats the others.
        assert!(mll > mlm, "LLaMA {mll} vs LM {mlm}");
    }

    #[test]
    fn ablation_ordering_matches_table5() {
        let topo = presets::hybrid_split(4, 4); // Table 5's setting (PG3)
        let t = |cfg: &HolmesConfig| {
            run_holmes_with(cfg, &topo, 3)
                .unwrap()
                .metrics
                .tflops_per_gpu
        };
        let full = t(&HolmesConfig::full());
        let no_sa = t(&HolmesConfig::without_self_adapting());
        let no_ov = t(&HolmesConfig::without_overlapped_optimizer());
        let no_both = t(&HolmesConfig::without_both());
        assert!(full >= no_sa, "full {full} vs w/o self-adapting {no_sa}");
        assert!(full >= no_ov, "full {full} vs w/o overlap {no_ov}");
        assert!(no_sa >= no_both, "{no_sa} vs {no_both}");
        assert!(no_ov >= no_both, "{no_ov} vs {no_both}");
        // Table 5: the overlapped optimizer contributes more than the
        // self-adapting partition.
        assert!(no_sa >= no_ov, "overlap matters more: {no_sa} vs {no_ov}");
        // Even "w/o both" (NIC selection only) beats full Megatron-LM.
        let mlm = run_framework(FrameworkKind::MegatronLm, &topo, 3)
            .unwrap()
            .metrics
            .tflops_per_gpu;
        assert!(
            no_both > mlm,
            "NIC selection alone {no_both} vs Megatron-LM {mlm}"
        );
    }

    #[test]
    fn summary_mentions_the_key_numbers() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_framework(FrameworkKind::Holmes, &topo, 1).unwrap();
        let s = r.summary();
        assert!(s.contains("TFLOPS/GPU"));
        assert!(s.contains("RDMA 2/2"));
    }

    #[test]
    fn run_result_exposes_nic_analysis() {
        let topo = presets::hybrid_two_cluster(2);
        let r = run_framework(FrameworkKind::Holmes, &topo, 1).unwrap();
        assert_eq!(r.nic.ethernet_groups, 0);
        assert_eq!(r.stage_layers.iter().sum::<u32>(), 30);
        let r = run_framework(FrameworkKind::MegatronLm, &topo, 1).unwrap();
        assert!(r.metrics.tflops_per_gpu > 0.0);
    }

    #[test]
    fn observed_run_matches_unobserved_and_spans_three_layers() {
        use holmes_obs::{Layer, ObsSession};
        let topo = presets::hybrid_two_cluster(2);
        let plain = run_framework(FrameworkKind::Holmes, &topo, 1).unwrap();
        let mut session = ObsSession::new();
        let observed =
            run_framework_observed(FrameworkKind::Holmes, &topo, 1, &mut session).unwrap();
        // Observation must not perturb the simulated physics.
        assert_eq!(
            plain.metrics.iteration_seconds.to_bits(),
            observed.metrics.iteration_seconds.to_bits()
        );
        // Event counts are an engine-internal work metric: the observed
        // run uses the exact engine (queued, versioned rate checks —
        // stale ones still get popped) while the unobserved run uses the
        // fast engine's single check register, so the totals differ even
        // though every completion timestamp is bit-identical.
        assert!(plain.report.events > 0);
        assert!(observed.report.events > 0);
        // One run populates engine + netsim spans and parallel planning
        // instants — three layers in a single merged trace.
        let layers = session.trace.layers_present();
        assert!(layers.contains(&Layer::Engine), "{layers:?}");
        assert!(layers.contains(&Layer::Netsim), "{layers:?}");
        assert!(layers.contains(&Layer::Parallel), "{layers:?}");
        assert_eq!(session.registry.counter("core.runs"), 1);
        assert!(session.registry.counter("netsim.flows_finished") > 0);
    }

    #[test]
    fn homogeneous_baselines_only_differ_by_optimizer() {
        // In a homogeneous IB cluster the NIC-awareness features are moot;
        // Megatron-LLaMA ≈ Holmes, and both beat plain Megatron-LM.
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let holmes = run_framework(FrameworkKind::Holmes, &topo, 1).unwrap();
        let llama = run_framework(FrameworkKind::MegatronLlama, &topo, 1).unwrap();
        let lm = run_framework(FrameworkKind::MegatronLm, &topo, 1).unwrap();
        let rel = (holmes.metrics.tflops_per_gpu - llama.metrics.tflops_per_gpu).abs()
            / holmes.metrics.tflops_per_gpu;
        assert!(rel < 0.05, "Holmes vs LLaMA rel diff {rel}");
        assert!(holmes.metrics.tflops_per_gpu > lm.metrics.tflops_per_gpu);
    }
}
