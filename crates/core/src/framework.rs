//! Emulations of the LLM training frameworks the paper compares (§4.2).

use crate::config::HolmesConfig;

/// Which framework's behaviour to emulate.
///
/// Emulation is faithful at the *strategy* level — the properties the paper
/// attributes to each framework in a heterogeneous NIC environment:
///
/// | framework | device order | transport (hetero env) | partition | DP sync |
/// |---|---|---|---|---|
/// | Holmes | NIC-aware | per-group auto | self-adapting | overlapped |
/// | Megatron-LM | hostfile | common-denominator TCP | uniform | blocking all-reduce |
/// | Megatron-DeepSpeed | hostfile | common-denominator TCP | uniform | blocking ZeRO-1 (RS+AG) |
/// | Megatron-LLaMA | hostfile | common-denominator TCP | uniform | overlapped optimizer |
///
/// In *homogeneous* single-cluster environments every framework's NCCL can
/// use RDMA, so the baselines only differ by optimizer strategy there —
/// matching the paper, which only reports baseline gaps in heterogeneous
/// settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameworkKind {
    /// This paper's framework.
    Holmes,
    /// NVIDIA Megatron-LM (the paper's \[3\]).
    MegatronLm,
    /// Microsoft Megatron-DeepSpeed (the paper's \[1\]).
    MegatronDeepSpeed,
    /// Alibaba Megatron-LLaMA (the paper's \[2\]).
    MegatronLlama,
}

impl FrameworkKind {
    /// All frameworks, Holmes first (the order of Figure 6's bars).
    pub const ALL: [FrameworkKind; 4] = [
        FrameworkKind::Holmes,
        FrameworkKind::MegatronLm,
        FrameworkKind::MegatronDeepSpeed,
        FrameworkKind::MegatronLlama,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FrameworkKind::Holmes => "Holmes",
            FrameworkKind::MegatronLm => "Megatron-LM",
            FrameworkKind::MegatronDeepSpeed => "Megatron-DeepSpeed",
            FrameworkKind::MegatronLlama => "Megatron-LLaMA",
        }
    }

    /// The Holmes-config equivalent of this framework's strategy set.
    /// (`None` flags map to baseline behaviours in the planner.)
    pub fn as_holmes_flags(self) -> HolmesConfig {
        match self {
            FrameworkKind::Holmes => HolmesConfig::full(),
            FrameworkKind::MegatronLm | FrameworkKind::MegatronDeepSpeed => HolmesConfig {
                cross_cluster_pp: false,
                auto_nic_selection: false,
                self_adapting_partition: false,
                overlapped_optimizer: false,
                ..HolmesConfig::default()
            },
            FrameworkKind::MegatronLlama => HolmesConfig {
                cross_cluster_pp: false,
                auto_nic_selection: false,
                self_adapting_partition: false,
                overlapped_optimizer: true,
                ..HolmesConfig::default()
            },
        }
    }

    /// Whether this framework uses a ZeRO-1-style distributed optimizer
    /// when the overlapped optimizer is off (DeepSpeed) rather than plain
    /// DDP all-reduce (Megatron-LM).
    pub fn uses_zero1(self) -> bool {
        matches!(self, FrameworkKind::MegatronDeepSpeed)
    }
}

impl std::fmt::Display for FrameworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holmes_enables_all_components() {
        let c = FrameworkKind::Holmes.as_holmes_flags();
        assert!(c.cross_cluster_pp && c.auto_nic_selection);
        assert!(c.self_adapting_partition && c.overlapped_optimizer);
    }

    #[test]
    fn megatron_llama_has_overlap_but_no_nic_awareness() {
        let c = FrameworkKind::MegatronLlama.as_holmes_flags();
        assert!(c.overlapped_optimizer);
        assert!(!c.auto_nic_selection && !c.cross_cluster_pp);
    }

    #[test]
    fn only_deepspeed_uses_zero1() {
        assert!(FrameworkKind::MegatronDeepSpeed.uses_zero1());
        assert!(!FrameworkKind::MegatronLm.uses_zero1());
        assert!(!FrameworkKind::Holmes.uses_zero1());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(FrameworkKind::Holmes.to_string(), "Holmes");
        assert_eq!(FrameworkKind::MegatronLlama.to_string(), "Megatron-LLaMA");
    }
}
