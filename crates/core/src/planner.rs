//! The Holmes planner: topology + job + feature flags → parallel plan.

use holmes_engine::{DpSyncStrategy, EngineConfig, ScheduleKind, TransportPolicy};
use holmes_model::{CommVolumes, ParameterGroup, TrainJob};
use holmes_parallel::{
    DegreeError, GroupLayout, GuidedPlanner, NicSelectionReport, ParallelDegrees, ParallelPlan,
    PartitionStrategy, PlacementWorkload, Planner, Scheduler, SelfAdaptingPartition,
    SequentialScheduler, StageProfile, StragglerAwarePartition, UniformPartition,
};
use holmes_topology::Topology;

use crate::calibration;
use crate::config::HolmesConfig;

/// What to plan: a job plus the model-parallel degrees it requires.
#[derive(Debug, Clone, Copy)]
pub struct PlanRequest {
    /// Tensor parallel size `t`.
    pub tensor_parallel: u32,
    /// Pipeline parallel size `p`.
    pub pipeline_parallel: u32,
    /// The training workload.
    pub job: TrainJob,
}

impl PlanRequest {
    /// The request for one of Table 2's parameter groups.
    pub fn parameter_group(id: u8) -> Self {
        let pg = ParameterGroup::table2(id);
        PlanRequest {
            tensor_parallel: pg.tensor_parallel,
            pipeline_parallel: pg.pipeline_parallel,
            job: pg.job(),
        }
    }
}

/// Planning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The degrees do not divide the topology's device count.
    Degrees(DegreeError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Degrees(e) => write!(f, "invalid parallel degrees: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Per-rank data-parallel gradient volume used to score candidate
/// placements: the worst stage's parameter count under a uniform layer
/// split (the partition is not chosen until after placement), sharded by
/// the tensor degree. Placement only needs a volume that ranks orders
/// consistently; the exact per-stage volumes are re-derived by the
/// estimator once the partition is fixed.
pub fn placement_gradient_bytes(job: &TrainJob, degrees: ParallelDegrees) -> u64 {
    let worst_stage_params = u64::from(job.config.num_layers).div_ceil(u64::from(degrees.pipeline))
        * holmes_model::layer_params(&job.config)
        + holmes_model::embedding_params(&job.config);
    CommVolumes::dp_gradient_bytes(worst_stage_params, degrees.tensor)
}

/// Per-device training FLOPs of *one transformer layer* of per-iteration
/// work — the local batch (`B/d`) through the layer, fwd+bwd, sharded by
/// the tensor degree. The straggler-aware partition prices each stage's
/// slowest member at this kernel size per layer.
pub fn placement_layer_flops(job: &TrainJob, degrees: ParallelDegrees) -> f64 {
    holmes_model::layer_train_flops_per_sample(&job.config)
        * (f64::from(job.global_batch) / f64::from(degrees.data))
        / f64::from(degrees.tensor)
}

/// Per-device FLOPs of the *worst stage's* per-iteration work (uniform
/// layer split, mirroring [`placement_gradient_bytes`]'s worst-stage
/// rule): the compute axis of the [`PlacementWorkload`] candidate
/// placements are priced against on mixed-generation fleets.
pub fn placement_stage_flops(job: &TrainJob, degrees: ParallelDegrees) -> f64 {
    placement_layer_flops(job, degrees)
        * f64::from(job.config.num_layers.div_ceil(degrees.pipeline))
}

/// Build the parallel plan and engine configuration for a request under a
/// Holmes feature configuration, using the default [`GuidedPlanner`] for
/// cross-cluster placement.
///
/// `fallback_dp` is the gradient-sync strategy used when the overlapped
/// optimizer flag is off: the Holmes ablation falls back to a blocking
/// distributed optimizer, Megatron-LM emulation to plain DDP all-reduce.
pub fn plan_for(
    topo: &Topology,
    req: &PlanRequest,
    cfg: &HolmesConfig,
    fallback_dp: DpSyncStrategy,
) -> Result<(ParallelPlan, EngineConfig), PlanError> {
    plan_for_with(topo, req, cfg, fallback_dp, &GuidedPlanner)
}

/// [`plan_for`] with an explicit placement strategy.
///
/// All three [`Planner`] strategies agree bit-for-bit wherever their
/// coverage overlaps, so swapping them never changes a plan's cost model —
/// only how much of the placement space is searched and certified:
/// `HeuristicPlanner` scores one order, `GuidedPlanner` (the production
/// default) proves its winner optimal, `ExhaustivePlanner` is the `M!`
/// reference oracle for tests.
pub fn plan_for_with(
    topo: &Topology,
    req: &PlanRequest,
    cfg: &HolmesConfig,
    fallback_dp: DpSyncStrategy,
    planner: &dyn Planner,
) -> Result<(ParallelPlan, EngineConfig), PlanError> {
    let degrees = ParallelDegrees::infer_data(
        req.tensor_parallel,
        req.pipeline_parallel,
        topo.device_count(),
    )
    .map_err(PlanError::Degrees)?;
    let layout = GroupLayout::new(degrees);
    let gradient_bytes = placement_gradient_bytes(&req.job, degrees);
    // Compute-uniform fleets plan against the historical gradient-only
    // workload (bit-identical costs and search statistics); only a fleet
    // mixing device generations turns the compute-skew axis on.
    let uniform_compute = topo.uniform_compute();
    let workload = if uniform_compute {
        PlacementWorkload::gradient_only(gradient_bytes)
    } else {
        PlacementWorkload::new(gradient_bytes, placement_stage_flops(&req.job, degrees))
    };

    // 1. Device ordering (Cross-Cluster Pipeline Parallelism): synthesize
    // a placement minimizing the analytic DP sync cost — plus, on
    // mixed-generation fleets, the worst DP group's straggler skew. The
    // baseline (flag off) keeps the Megatron-style sequential hostfile
    // order.
    let assignment = if cfg.cross_cluster_pp {
        planner.plan_workload(topo, &layout, workload).assignment
    } else {
        SequentialScheduler.assign(topo, &layout)
    };

    // 2. Effective stage speeds — the slowest member (NIC × GPU) binds a
    // stage. GPU-peak scaling extends the paper to mixed-accelerator
    // fleets (see `calibration::device_speed`).
    let stage_speeds: Vec<f64> = (0..degrees.pipeline)
        .map(|stage| {
            layout
                .stage_ranks(stage)
                .iter()
                .map(|&l| {
                    let dev = topo
                        .device(assignment.device_of(l))
                        .expect("device in topology");
                    calibration::device_speed(dev.nic_type, dev.gpu.peak_tflops)
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    // 3. Layer partition. Compute-uniform fleets keep the exact Eq. 2
    // Self-Adapting split over the calibrated stage speeds; a fleet
    // mixing device generations upgrades to the straggler-aware
    // generalization, balancing per-stage completion times — the slowest
    // member's compute per layer plus the stage's worst NIC-priced DP
    // sync (the straggler-aware profile also delegates back to Eq. 2
    // bit-for-bit whenever per-layer times come out equal).
    let stage_layers = if cfg.self_adapting_partition {
        if uniform_compute {
            SelfAdaptingPartition { alpha: cfg.alpha }
                .partition(req.job.config.num_layers, &stage_speeds)
        } else {
            let layer_flops = placement_layer_flops(&req.job, degrees);
            let report = NicSelectionReport::analyze(topo, &layout, &assignment);
            let profiles: Vec<StageProfile> = (0..degrees.pipeline)
                .map(|stage| {
                    let sec_per_layer = layout
                        .stage_ranks(stage)
                        .iter()
                        .map(|&l| {
                            let dev = topo
                                .device(assignment.device_of(l))
                                .expect("device in topology");
                            dev.gpu.compute_seconds(layer_flops)
                        })
                        .fold(0.0f64, f64::max);
                    // DP group g serves stage g / t (Eq. 4): the stage's
                    // fixed communication is its worst group's sync.
                    let comm_seconds = (stage * degrees.tensor..(stage + 1) * degrees.tensor)
                        .map(|g| report.groups[g as usize].sync_cost_seconds(topo, gradient_bytes))
                        .fold(0.0f64, f64::max);
                    StageProfile {
                        speed_tflops: stage_speeds[stage as usize],
                        sec_per_layer,
                        comm_seconds,
                    }
                })
                .collect();
            StragglerAwarePartition { alpha: cfg.alpha }
                .partition_stages(req.job.config.num_layers, &profiles)
        }
    } else {
        UniformPartition.partition(req.job.config.num_layers, &stage_speeds)
    };

    let plan = ParallelPlan::new(layout, assignment, stage_layers, true);

    // 4. Transport (Automatic NIC Selection) — without it, a job touching
    // more than one cluster or NIC technology is demoted to TCP job-wide.
    let transport = if cfg.auto_nic_selection || topo.is_homogeneous() {
        TransportPolicy::Auto
    } else {
        TransportPolicy::ForceTcpInterNode
    };

    // 5. Gradient synchronization.
    let dp_sync = if cfg.overlapped_optimizer {
        DpSyncStrategy::OverlappedOptimizer {
            buckets: cfg.buckets,
        }
    } else {
        fallback_dp
    };

    Ok((
        plan,
        EngineConfig {
            schedule: ScheduleKind::OneFOneB,
            dp_sync,
            transport,
            recompute_activations: false,
            enforce_memory: false,
            // Holmes's NIC-aware planning includes the hierarchical
            // cross-cluster all-reduce whenever the transport allows it.
            hierarchical_cross_cluster: cfg.auto_nic_selection,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use holmes_topology::{presets, NicType};

    #[test]
    fn full_holmes_plan_on_hybrid() {
        let topo = presets::hybrid_two_cluster(2);
        let (plan, engine) = plan_for(
            &topo,
            &PlanRequest::parameter_group(1),
            &HolmesConfig::full(),
            DpSyncStrategy::DistributedOptimizer,
        )
        .unwrap();
        // Self-adapting: IB stage (197) gets more layers than RoCE (160).
        assert_eq!(plan.stage_layers, vec![17, 13]);
        assert_eq!(engine.transport, TransportPolicy::Auto);
        assert!(matches!(
            engine.dp_sync,
            DpSyncStrategy::OverlappedOptimizer { .. }
        ));
        // All DP groups NIC-homogeneous under the Holmes scheduler.
        assert_eq!(plan.nic_report(&topo).ethernet_groups, 0);
    }

    #[test]
    fn baseline_plan_demotes_to_tcp_on_heterogeneous() {
        let topo = presets::hybrid_two_cluster(2);
        let cfg = HolmesConfig {
            auto_nic_selection: false,
            cross_cluster_pp: false,
            self_adapting_partition: false,
            overlapped_optimizer: false,
            ..HolmesConfig::default()
        };
        let (plan, engine) = plan_for(
            &topo,
            &PlanRequest::parameter_group(1),
            &cfg,
            DpSyncStrategy::AllReduce,
        )
        .unwrap();
        assert_eq!(engine.transport, TransportPolicy::ForceTcpInterNode);
        assert_eq!(engine.dp_sync, DpSyncStrategy::AllReduce);
        assert_eq!(plan.stage_layers, vec![15, 15]);
    }

    #[test]
    fn baseline_keeps_rdma_in_homogeneous_cluster() {
        let topo = presets::homogeneous(NicType::InfiniBand, 4);
        let cfg = HolmesConfig {
            auto_nic_selection: false,
            ..HolmesConfig::default()
        };
        let (_, engine) = plan_for(
            &topo,
            &PlanRequest::parameter_group(1),
            &cfg,
            DpSyncStrategy::AllReduce,
        )
        .unwrap();
        assert_eq!(engine.transport, TransportPolicy::Auto);
    }

    #[test]
    fn three_cluster_plan_gets_three_stage_speeds() {
        let topo = presets::table4_2r_2ib_2ib();
        let (plan, _) = plan_for(
            &topo,
            &PlanRequest::parameter_group(5),
            &HolmesConfig::full(),
            DpSyncStrategy::DistributedOptimizer,
        )
        .unwrap();
        assert_eq!(plan.stage_layers.len(), 3);
        assert_eq!(plan.total_layers(), 36);
        // Holmes orders IB clusters first: stage 0/1 (IB) ≥ stage 2 (RoCE).
        assert!(plan.stage_layers[0] >= plan.stage_layers[2]);
    }

    #[test]
    fn hetero_plan_skews_layers_toward_fast_generations() {
        // gen_mix_3c: three 16-GPU clusters of distinct generations, so
        // with p=3 each stage is one generation. The straggler-aware
        // partition must give the H100 stage strictly more layers than
        // the V100 stage while conserving the total.
        let topo = presets::gen_mix_3c();
        let (plan, _) = plan_for(
            &topo,
            &PlanRequest::parameter_group(5),
            &HolmesConfig::full(),
            DpSyncStrategy::DistributedOptimizer,
        )
        .unwrap();
        assert_eq!(plan.total_layers(), 36);
        assert!(plan.stage_layers.iter().all(|&n| n >= 1));
        let layers_of = |needle: &str| -> u32 {
            (0..plan.stage_layers.len() as u32)
                .find(|&stage| {
                    let dev = topo
                        .device(plan.stage_devices(stage)[0])
                        .expect("device exists");
                    dev.gpu.name.contains(needle)
                })
                .map(|stage| plan.stage_layers[stage as usize])
                .expect("generation hosts a stage")
        };
        assert!(
            layers_of("H100") > layers_of("V100"),
            "H100 stage must out-carry the V100 stage: {:?}",
            plan.stage_layers
        );
    }

    #[test]
    fn planner_strategies_yield_identical_plans() {
        use holmes_parallel::{ExhaustivePlanner, HeuristicPlanner};
        for (topo, pg) in [
            (presets::hybrid_two_cluster(2), 1u8),
            (presets::table4_2r_2ib_2ib(), 5),
        ] {
            let req = PlanRequest::parameter_group(pg);
            let cfg = HolmesConfig::full();
            let (guided, _) =
                plan_for(&topo, &req, &cfg, DpSyncStrategy::DistributedOptimizer).unwrap();
            let strategies: [&dyn Planner; 2] = [&HeuristicPlanner, &ExhaustivePlanner::default()];
            for planner in strategies {
                let (plan, _) = plan_for_with(
                    &topo,
                    &req,
                    &cfg,
                    DpSyncStrategy::DistributedOptimizer,
                    planner,
                )
                .unwrap();
                assert_eq!(plan.assignment, guided.assignment, "{}", planner.name());
                assert_eq!(plan.stage_layers, guided.stage_layers, "{}", planner.name());
            }
        }
    }

    #[test]
    fn placement_volume_uses_the_worst_stage() {
        let req = PlanRequest::parameter_group(1);
        let degrees = ParallelDegrees::infer_data(1, 2, 16).unwrap();
        let per_layer = holmes_model::layer_params(&req.job.config);
        let embed = holmes_model::embedding_params(&req.job.config);
        let layers = u64::from(req.job.config.num_layers);
        assert_eq!(
            placement_gradient_bytes(&req.job, degrees),
            (layers.div_ceil(2) * per_layer + embed) * 4
        );
        // Tensor sharding divides the synced volume.
        let sharded = ParallelDegrees::infer_data(2, 2, 32).unwrap();
        assert_eq!(
            placement_gradient_bytes(&req.job, sharded),
            placement_gradient_bytes(&req.job, degrees) / 2
        );
    }

    #[test]
    fn impossible_degrees_are_rejected() {
        let topo = presets::homogeneous(NicType::InfiniBand, 3); // 24 GPUs
        let mut req = PlanRequest::parameter_group(1);
        req.pipeline_parallel = 5; // 24 % 5 != 0
        assert!(matches!(
            plan_for(
                &topo,
                &req,
                &HolmesConfig::full(),
                DpSyncStrategy::AllReduce
            ),
            Err(PlanError::Degrees(_))
        ));
    }
}
