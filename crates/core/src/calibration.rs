//! Calibration of the simulated substrate against the paper's Table 1.
//!
//! Table 1 measures PG1 (3.6 B GPT) on 4 nodes × 8 A100s under each NIC:
//!
//! | NIC        | TFLOPS | Throughput | Bandwidth |
//! |------------|--------|------------|-----------|
//! | InfiniBand | 197    | 99.23      | 200 Gb/s  |
//! | RoCE       | 160    | 80.54      | 200 Gb/s  |
//! | Ethernet   | 122    | 61.32      | 25 Gb/s   |
//!
//! Three knobs in the substrate are fitted to those three rows (everything
//! else is predicted, not fitted):
//!
//! 1. the GPU occupancy curve (`GpuProfile::max_efficiency`), setting the
//!    compute-bound ceiling;
//! 2. per-NIC protocol efficiency (`NicProfile::efficiency`), setting
//!    exposed collective time;
//! 3. per-NIC compute interference (`NicProfile::compute_interference`),
//!    covering the throughput loss that exposed collectives alone cannot
//!    explain (NCCL proxy/SM contention, TCP stack CPU load).
//!
//! This module also provides the *effective stage speed* table that the
//! Self-Adapting Pipeline Partition (Eq. 2) consumes — the paper itself
//! defines `S(IB)`, `S(RoCE)` as achieved TFLOPS from Table 1.

use holmes_topology::NicType;

/// Paper Table 1: achieved TFLOPS per GPU for PG1 on 4 nodes.
pub fn paper_table1_tflops(nic: NicType) -> f64 {
    match nic {
        NicType::InfiniBand => 197.0,
        NicType::RoCE => 160.0,
        NicType::Ethernet => 122.0,
    }
}

/// Paper Table 1: throughput (samples/s) for PG1 on 4 nodes.
pub fn paper_table1_throughput(nic: NicType) -> f64 {
    match nic {
        NicType::InfiniBand => 99.23,
        NicType::RoCE => 80.54,
        NicType::Ethernet => 61.32,
    }
}

/// Effective computational speed of a pipeline stage whose devices sit
/// behind `nic`, as consumed by the Self-Adapting Pipeline Partition
/// (§3.1.2: "we define the computational speed of a device within
/// InfiniBand and RoCE as S(IB) and S(RoCE), interpreted as TFLOPS").
pub fn stage_speed(nic: NicType) -> f64 {
    paper_table1_tflops(nic)
}

/// Extension beyond the paper: effective speed of a device combining its
/// NIC environment *and* its accelerator generation. The paper assumes
/// uniform A100s and lists "scheduling methods for diverse environments"
/// as future work; scaling the Table 1 anchor by the device's fraction of
/// A100 peak lets the Self-Adapting Partition rebalance mixed-GPU fleets
/// too (e.g. an A100 cluster joined with an older V100 cluster).
pub fn device_speed(nic: NicType, peak_tflops: f64) -> f64 {
    const A100_PEAK: f64 = 312.0;
    stage_speed(nic) * (peak_tflops / A100_PEAK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speeds_are_ordered_ib_roce_ethernet() {
        assert!(stage_speed(NicType::InfiniBand) > stage_speed(NicType::RoCE));
        assert!(stage_speed(NicType::RoCE) > stage_speed(NicType::Ethernet));
    }

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(paper_table1_tflops(NicType::InfiniBand), 197.0);
        assert_eq!(paper_table1_throughput(NicType::Ethernet), 61.32);
    }

    #[test]
    fn device_speed_scales_with_gpu_peak() {
        let a100 = device_speed(NicType::InfiniBand, 312.0);
        assert_eq!(a100, stage_speed(NicType::InfiniBand));
        let v100 = device_speed(NicType::InfiniBand, 125.0);
        assert!(v100 < a100);
        assert!((v100 / a100 - 125.0 / 312.0).abs() < 1e-12);
        // A fast GPU behind Ethernet can still rank below a slower GPU on
        // InfiniBand — both dimensions matter.
        assert!(device_speed(NicType::Ethernet, 312.0) < device_speed(NicType::InfiniBand, 200.0));
    }
}
