//! Parallelism auto-tuning: search `(t, p, α)` for a job on a fleet.
//!
//! The paper fixes Table 2's degrees by hand; a production framework needs
//! to *find* them. The tuner enumerates feasible degree combinations,
//! prunes with memory checks and the closed-form
//! [`crate::estimate::estimate_iteration`], then simulates the `top_k`
//! survivors for an accurate ranking — the classic estimate-then-measure
//! search loop. Every candidate's placement routes through
//! [`crate::planner::plan_for`] and therefore through the
//! [`holmes_parallel::Planner`] trait's guided branch-and-bound synthesis,
//! so each `(t, p)` cell is scored on its *optimal* cluster order, not
//! just the fastest-first heuristic.

use holmes_engine::{simulate_iteration, DpSyncStrategy, EngineConfig, TrainingMetrics};
use holmes_model::{MemoryEstimate, TrainJob};
use holmes_parallel::{EvalMode, ParallelPlan};
use holmes_topology::Topology;
use rayon::prelude::*;

use crate::config::HolmesConfig;
use crate::estimate::estimate_iteration;
use crate::planner::{plan_for, PlanRequest};

/// Search space bounds.
#[derive(Debug, Clone, Copy)]
pub struct AutotuneRequest {
    /// The workload.
    pub job: TrainJob,
    /// Largest tensor-parallel degree to try (bounded by GPUs per node).
    pub max_tensor: u32,
    /// Largest pipeline depth to try.
    pub max_pipeline: u32,
    /// Candidates to simulate after estimation pruning.
    pub top_k: usize,
}

impl AutotuneRequest {
    /// Sensible defaults: `t ≤ 8`, `p ≤ 8`, simulate the best 5 estimates.
    pub fn new(job: TrainJob) -> Self {
        AutotuneRequest {
            job,
            max_tensor: 8,
            max_pipeline: 8,
            top_k: 5,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Tensor parallel degree.
    pub tensor: u32,
    /// Pipeline parallel degree.
    pub pipeline: u32,
    /// Data parallel degree (derived).
    pub data: u32,
    /// Closed-form estimated iteration seconds.
    pub estimated_seconds: f64,
    /// Simulated metrics (only for the `top_k` finalists).
    pub simulated: Option<TrainingMetrics>,
    /// Whether the largest stage fits in device memory.
    pub fits_memory: bool,
    /// Plan and engine config built during enumeration, cached so the
    /// finalist simulation pass does not re-run `plan_for`.
    plan: Option<Box<(ParallelPlan, EngineConfig)>>,
}

impl Candidate {
    /// The cached parallel plan behind this candidate, when enumeration
    /// built one (memory-infeasible degree combinations carry none).
    /// Exposed so external checkers — `holmes-analysis`' plan verifier in
    /// particular — can audit exactly what the autotuner scored.
    pub fn plan(&self) -> Option<&ParallelPlan> {
        self.plan.as_deref().map(|(plan, _)| plan)
    }

    /// Ranking key: simulated time when available, else the estimate;
    /// memory-infeasible candidates sort last.
    fn score(&self) -> f64 {
        let base = self
            .simulated
            .map(|m| m.iteration_seconds)
            .unwrap_or(self.estimated_seconds);
        if self.fits_memory {
            base
        } else {
            base + 1e9
        }
    }
}

/// Search for the fastest feasible plan of a job on a topology under a
/// Holmes configuration. Returns all evaluated candidates, best first.
///
/// Finalists are simulated in parallel; use [`autotune_with_mode`] to
/// force the serial reference path.
pub fn autotune(topo: &Topology, req: &AutotuneRequest, cfg: &HolmesConfig) -> Vec<Candidate> {
    autotune_with_mode(topo, req, cfg, EvalMode::Parallel)
}

/// [`autotune`] with an explicit finalist evaluation mode.
pub fn autotune_with_mode(
    topo: &Topology,
    req: &AutotuneRequest,
    cfg: &HolmesConfig,
    mode: EvalMode,
) -> Vec<Candidate> {
    let n = topo.device_count();
    let g = topo.gpus_per_node();
    let mut candidates = Vec::new();

    for t in 1..=req.max_tensor.min(g) {
        if !t.is_power_of_two() {
            continue; // Megatron requires power-of-two head splits.
        }
        for p in 1..=req.max_pipeline.min(req.job.config.num_layers) {
            if !n.is_multiple_of(t * p) {
                continue;
            }
            let d = n / (t * p);
            if req.job.microbatches_per_replica(d).is_none() {
                continue;
            }
            let plan_req = PlanRequest {
                tensor_parallel: t,
                pipeline_parallel: p,
                job: req.job,
            };
            let Ok((plan, engine_cfg)) =
                plan_for(topo, &plan_req, cfg, DpSyncStrategy::DistributedOptimizer)
            else {
                continue;
            };
            let Some(est) = estimate_iteration(topo, &plan, &req.job, &engine_cfg) else {
                continue;
            };
            // Memory feasibility on the heaviest stage.
            let cfg_model = req.job.config;
            let (heaviest_stage, &max_layers) = plan
                .stage_layers
                .iter()
                .enumerate()
                .max_by_key(|&(_, &layers)| layers)
                .expect("p >= 1");
            let stage_params = u64::from(max_layers) * holmes_model::layer_params(&cfg_model)
                + holmes_model::embedding_params(&cfg_model);
            // The heaviest stage must fit its *smallest* member: on a
            // mixed-generation fleet the stage's weakest device binds.
            let capacity = plan
                .stage_devices(heaviest_stage as u32)
                .iter()
                .map(|&r| topo.device(r).expect("device exists").gpu.memory_bytes())
                .min()
                .expect("stage has at least one device");
            let mem = MemoryEstimate::for_rank(
                &cfg_model,
                stage_params,
                t,
                req.job.micro_batch,
                p,
                max_layers,
                engine_cfg.dp_sync.optimizer_shards(d),
            );
            candidates.push(Candidate {
                tensor: t,
                pipeline: p,
                data: d,
                estimated_seconds: est.seconds,
                simulated: None,
                fits_memory: mem.fits_in(capacity),
                plan: Some(Box::new((plan, engine_cfg))),
            });
        }
    }

    // Simulate the top_k feasible estimates. Each finalist simulation is
    // independent (private `NetSim` per call), so they fan out across
    // threads; results merge back in candidate order, keeping the final
    // ranking identical to the serial path.
    candidates.sort_by(|a, b| a.score().partial_cmp(&b.score()).expect("finite scores"));
    let k = req.top_k.min(candidates.len());
    let job = req.job;
    let simulate = |candidate: &Candidate| -> Option<TrainingMetrics> {
        let (plan, engine_cfg) = candidate.plan.as_deref()?;
        simulate_iteration(topo, plan, &job, engine_cfg)
            .ok()
            .map(|(_, metrics)| metrics)
    };
    let finalist_metrics: Vec<Option<TrainingMetrics>> = match mode {
        EvalMode::Parallel => candidates[..k].par_iter().map(simulate).collect(),
        EvalMode::Serial => candidates[..k].iter().map(simulate).collect(),
    };
    for (candidate, metrics) in candidates.iter_mut().zip(finalist_metrics) {
        candidate.simulated = metrics;
    }
    // Final ranking: simulated finalists first (measured beats estimated —
    // an optimistic estimate must not leapfrog a measured candidate), each
    // tier ordered by its score.
    candidates.sort_by(|a, b| {
        (a.simulated.is_none(), a.score())
            .partial_cmp(&(b.simulated.is_none(), b.score()))
            .expect("finite scores")
    });
    candidates
}

/// Record a finished autotune search into an observability session: one
/// `candidate-scored` planning event per ranked candidate (best first,
/// matching the returned order) plus summary counters and the winner's
/// iteration time.
///
/// Recording is post-hoc over the ranked list for the same reason the
/// parallel layer's is ([`holmes_parallel::obs`]): finalist simulation
/// fans out across threads, so threading a sink through it would make
/// event order racy.
pub fn record_autotune(session: &mut holmes_obs::ObsSession, ranked: &[Candidate]) {
    use holmes_obs::Layer;
    let reg = &mut session.registry;
    reg.counter_add("core.autotune_candidates", ranked.len() as u64);
    reg.counter_add(
        "core.autotune_simulated",
        ranked.iter().filter(|c| c.simulated.is_some()).count() as u64,
    );
    if let Some(best) = ranked.first() {
        reg.gauge_set(
            "core.autotune_best_seconds",
            best.simulated
                .map(|m| m.iteration_seconds)
                .unwrap_or(best.estimated_seconds),
        );
    }
    for (i, c) in ranked.iter().enumerate() {
        let mut args = vec![
            ("rank".to_owned(), format!("{i}")),
            (
                "estimated_seconds".to_owned(),
                format!("{:?}", c.estimated_seconds),
            ),
            ("fits_memory".to_owned(), format!("{}", c.fits_memory)),
        ];
        if let Some(m) = &c.simulated {
            args.push((
                "simulated_seconds".to_owned(),
                format!("{:?}", m.iteration_seconds),
            ));
        }
        session.trace.planning_event(
            Layer::Core,
            i as u64,
            format!("candidate-scored t{} p{} d{}", c.tensor, c.pipeline, c.data),
            "autotune",
            args,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holmes_model::ParameterGroup;
    use holmes_topology::presets;

    #[test]
    fn autotuner_winner_is_near_the_exhaustive_optimum() {
        // The paper runs PG3 with t=1, p=2 on 8 nodes. Several plans tie
        // within ~1% there (the engine confirms (2,2) ≈ (1,2)), so assert
        // near-optimality against an exhaustive simulated sweep rather
        // than an exact configuration.
        use crate::planner::plan_for;
        use holmes_engine::simulate_iteration;
        let topo = presets::hybrid_split(4, 4);
        let job = ParameterGroup::table2(3).job();
        let req = AutotuneRequest::new(job);
        let ranked = autotune(&topo, &req, &HolmesConfig::full());
        assert!(!ranked.is_empty());
        let best = &ranked[0];
        let winner = best.simulated.expect("winner must be simulated");

        // Exhaustive ground truth over the same search space.
        let mut best_exhaustive = f64::INFINITY;
        for c in &ranked {
            let plan_req = PlanRequest {
                tensor_parallel: c.tensor,
                pipeline_parallel: c.pipeline,
                job,
            };
            let (plan, engine_cfg) = plan_for(
                &topo,
                &plan_req,
                &HolmesConfig::full(),
                DpSyncStrategy::DistributedOptimizer,
            )
            .unwrap();
            let (_, m) = simulate_iteration(&topo, &plan, &job, &engine_cfg).unwrap();
            best_exhaustive = best_exhaustive.min(m.iteration_seconds);
        }
        assert!(
            winner.iteration_seconds <= best_exhaustive * 1.02,
            "winner {} vs exhaustive best {}",
            winner.iteration_seconds,
            best_exhaustive
        );
        // And the paper's own configuration must be in the search space.
        assert!(ranked.iter().any(|c| (c.tensor, c.pipeline) == (1, 2)));
    }

    #[test]
    fn parallel_and_serial_rankings_are_identical() {
        let topo = presets::hybrid_split(4, 4);
        let req = AutotuneRequest::new(ParameterGroup::table2(3).job());
        let cfg = HolmesConfig::full();
        let par = autotune_with_mode(&topo, &req, &cfg, EvalMode::Parallel);
        let ser = autotune_with_mode(&topo, &req, &cfg, EvalMode::Serial);
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(
                (p.tensor, p.pipeline, p.data),
                (s.tensor, s.pipeline, s.data)
            );
            assert_eq!(p.estimated_seconds.to_bits(), s.estimated_seconds.to_bits());
            assert_eq!(
                p.simulated.map(|m| m.iteration_seconds.to_bits()),
                s.simulated.map(|m| m.iteration_seconds.to_bits()),
            );
        }
    }

    #[test]
    fn candidates_are_sorted_best_first() {
        let topo = presets::homogeneous(holmes_topology::NicType::InfiniBand, 4);
        let req = AutotuneRequest::new(ParameterGroup::table2(1).job());
        let ranked = autotune(&topo, &req, &HolmesConfig::full());
        for w in ranked.windows(2) {
            assert!(w[0].score() <= w[1].score());
        }
    }

    #[test]
    fn autotune_recording_covers_every_candidate() {
        let topo = presets::homogeneous(holmes_topology::NicType::InfiniBand, 4);
        let req = AutotuneRequest::new(ParameterGroup::table2(1).job());
        let ranked = autotune(&topo, &req, &HolmesConfig::full());
        let mut session = holmes_obs::ObsSession::new();
        record_autotune(&mut session, &ranked);
        assert_eq!(
            session.registry.counter("core.autotune_candidates"),
            ranked.len() as u64
        );
        assert_eq!(session.trace.instant_count(), ranked.len() as u64);
        assert!(session
            .registry
            .gauge("core.autotune_best_seconds")
            .is_some());
    }

    #[test]
    fn infeasible_degrees_are_skipped() {
        // 24 GPUs: t=8, p=5 never appears (not a divisor).
        let topo = presets::homogeneous(holmes_topology::NicType::RoCE, 3);
        let req = AutotuneRequest::new(ParameterGroup::table2(1).job());
        let ranked = autotune(&topo, &req, &HolmesConfig::full());
        assert!(ranked
            .iter()
            .all(|c| (c.tensor * c.pipeline * c.data) == topo.device_count()));
        assert!(ranked.iter().all(|c| c.tensor.is_power_of_two()));
    }

    #[test]
    fn memory_infeasible_candidates_rank_last() {
        // PG7 (39.1 B) on 4 nodes: t=1 plans cannot fit; the winner must
        // use large t.
        let topo = presets::homogeneous(holmes_topology::NicType::InfiniBand, 4);
        let req = AutotuneRequest::new(ParameterGroup::table2(7).job());
        let ranked = autotune(&topo, &req, &HolmesConfig::full());
        let best = &ranked[0];
        assert!(best.fits_memory, "winner must fit: {best:?}");
        assert!(best.tensor >= 4, "39B needs tensor parallelism: {best:?}");
        // And at least one t=1 candidate was evaluated and marked OOM.
        assert!(ranked.iter().any(|c| c.tensor == 1 && !c.fits_memory));
    }
}
