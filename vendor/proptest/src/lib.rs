//! Vendored minimal subset of the [`proptest`](https://docs.rs/proptest)
//! API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of proptest its test suites use: the `proptest!`
//! macro, `prop_assert*` / `prop_assume!`, range and tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop_oneof!` and
//! `Just`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs but is
//!   not minimized.
//! * **Deterministic seeding.** Each test derives its seed from the test
//!   name (stable across runs and machines) unless `PROPTEST_SEED` is
//!   set; `PROPTEST_CASES` overrides the per-test case count
//!   (default 64).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generator handed to strategies; wraps the vendored [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeded generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range_u64(lo, hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Strategies: how to generate values.
pub mod strategy {
    use super::TestRng;

    /// A value generator. Object-safe; no shrinking.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erase, for heterogeneous unions (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: std::fmt::Debug> Union<T> {
        /// Build from at least one option.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.range_u64(0, self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_u64(self.start as u64, self.end as u64) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    if hi == u64::MAX {
                        return rng.next_u64().max(lo) as $ty;
                    }
                    rng.range_u64(lo, hi + 1) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;

        /// Anything usable as a size range for [`vec()`].
        pub trait SizeRange {
            /// Inclusive bounds `(min, max)`.
            fn bounds(&self) -> (usize, usize);
        }

        impl SizeRange for std::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl SizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        /// Strategy producing `Vec`s of an element strategy.
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.min == self.max {
                    self.min
                } else {
                    rng.range_u64(self.min as u64, self.max as u64 + 1) as usize
                };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(elem, sizes)` — vectors whose length is
        /// drawn from `sizes` and whose elements come from `elem`.
        pub fn vec<S: Strategy>(elem: S, sizes: impl SizeRange) -> VecStrategy<S> {
            let (min, max) = sizes.bounds();
            VecStrategy { elem, min, max }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::TestRng;

        /// Strategy drawing uniformly from a fixed set of values.
        pub struct Select<T: Clone + std::fmt::Debug> {
            options: Vec<T>,
        }

        impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.range_u64(0, self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }

        /// `prop::sample::select(options)` — uniform choice from `options`.
        pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }
    }
}

/// Runner support used by the generated tests (not part of upstream's
/// public API, but referenced by this crate's macros).
pub mod runner {
    use super::TestRng;

    /// Cases per property (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(64)
    }

    /// Per-test RNG: seeded from `PROPTEST_SEED` if set, else from a hash
    /// of the test's module path and name so streams are stable.
    pub fn rng_for(test_name: &str) -> TestRng {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            return TestRng::seed_from_u64(seed);
        }
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Discard the current case (draw a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::runner::cases();
            let mut rng = $crate::runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cases {
                attempts += 1;
                assert!(
                    attempts <= cases.saturating_mul(50),
                    "property '{}' rejected too many cases ({} attempts for {} accepted)",
                    stringify!($name),
                    attempts,
                    accepted
                );
                let mut __inputs = String::new();
                let outcome: $crate::TestCaseResult = (|| {
                    $(
                        let __value = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                        __inputs.push_str(&format!(
                            "\n  {} = {:?}",
                            stringify!($pat),
                            __value
                        ));
                        let $pat = __value;
                    )+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed: {}\ninputs:{}",
                            stringify!($name),
                            msg,
                            __inputs
                        );
                    }
                }
            }
        }
    )*};
}

/// The customary glob import, mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, TestCaseError,
        TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 1u64..=3, z in 0usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!(z < 4);
        }

        #[test]
        fn tuples_and_vecs_generate(
            (a, b) in (1u32..5, 1u32..5),
            v in prop::collection::vec(0u64..100, 1..8),
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn select_and_oneof_choose_listed(
            s in prop::sample::select(vec![2u32, 4, 8]),
            o in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!([2, 4, 8].contains(&s));
            prop_assert!(o == 1 || o == 2);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn float_ranges_sample_uniformly(x in 1.0f64..2.0, y in 0.5f64..=0.75) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((0.5..=0.75).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failure_panics_with_inputs() {
        // No #[test] attribute here: the expansion is called directly
        // below (an inner #[test] would be ignored and warn).
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_streams_per_test_name() {
        let mut a = crate::runner::rng_for("some::test");
        let mut b = crate::runner::rng_for("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::runner::rng_for("other::test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
