//! Vendored minimal subset of the [`rayon`](https://docs.rs/rayon) API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of rayon it actually uses, implemented on
//! `std::thread::scope`. The guarantees that matter to callers hold:
//!
//! * **Stable output order** — `par_iter().map(f).collect::<Vec<_>>()`
//!   returns results in input order regardless of execution interleaving,
//!   exactly like real rayon's indexed parallel iterators.
//! * **Dynamic scheduling** — items are claimed from a shared atomic
//!   cursor, so uneven per-item cost still balances across workers.
//! * **Panic propagation** — a panic in a worker closure propagates to the
//!   caller (via scoped-thread join), matching rayon.
//!
//! Thread count is `std::thread::available_parallelism()`, overridable
//! with the `RAYON_NUM_THREADS` environment variable (`1` forces serial
//! in-place execution with no thread spawns).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parallel iterator traits and adapters.
pub mod iter {
    use super::*;

    /// The number of worker threads to use for `len` items.
    fn workers_for(len: usize) -> usize {
        let hw = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        hw.min(len).max(1)
    }

    /// Run `f` over `0..len`, collecting results in index order.
    ///
    /// Work is claimed dynamically from an atomic cursor; each worker
    /// buffers `(index, value)` pairs which are merged and re-ordered at
    /// the end, so the output order is independent of scheduling.
    fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = workers_for(len);
        if workers <= 1 {
            return (0..len).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                }));
            }
            for h in handles {
                buckets.push(h.join().expect("rayon shim worker panicked"));
            }
        });
        let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
        for (i, v) in buckets.into_iter().flatten() {
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly once"))
            .collect()
    }

    /// A parallel iterator: a deferred `map` over an indexable source.
    ///
    /// Unlike real rayon this is not a general combinator algebra — only
    /// `map(...).collect::<Vec<_>>()` (plus a few reductions) is offered,
    /// which is the entire surface this workspace uses.
    pub trait ParallelIterator: Sized {
        /// Element type produced by the iterator.
        type Item: Send;

        /// Realize the iterator into index-ordered items.
        fn realize(self) -> Vec<Self::Item>;

        /// Map every element through `f` in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Collect into a container (only `Vec<T>` is supported).
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter(self)
        }
    }

    /// Conversion from a parallel iterator, mirror of rayon's trait.
    pub trait FromParallelIterator<T: Send> {
        /// Build the collection from the realized items.
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
            iter.realize()
        }
    }

    /// `map` adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, R> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync + Send,
    {
        type Item = R;

        fn realize(self) -> Vec<R> {
            let Map { base, f } = self;
            let items = base.realize();
            let slots: Vec<Mutex<Option<B::Item>>> =
                items.into_iter().map(|v| Mutex::new(Some(v))).collect();
            par_map_indexed(slots.len(), |i| {
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("item taken once");
                f(item)
            })
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct SliceParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
        type Item = &'a T;

        fn realize(self) -> Vec<&'a T> {
            self.items.iter().collect()
        }
    }

    /// Owning parallel iterator over a `Vec`.
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecParIter<T> {
        type Item = T;

        fn realize(self) -> Vec<T> {
            self.items
        }
    }

    /// Parallel iterator over an integer range.
    pub struct RangeParIter<T> {
        range: std::ops::Range<T>,
    }

    macro_rules! range_par_iter {
        ($($ty:ty),*) => {$(
            impl ParallelIterator for RangeParIter<$ty> {
                type Item = $ty;

                fn realize(self) -> Vec<$ty> {
                    self.range.collect()
                }
            }

            impl IntoParallelIterator for std::ops::Range<$ty> {
                type Item = $ty;
                type Iter = RangeParIter<$ty>;

                fn into_par_iter(self) -> RangeParIter<$ty> {
                    RangeParIter { range: self }
                }
            }
        )*};
    }
    range_par_iter!(u32, u64, usize);

    /// Types convertible into an owning parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;

        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    /// Types with a borrowing `par_iter`.
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed element type.
        type Item: Send + 'a;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrowing parallel iterator, mirror of `slice::iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceParIter<'a, T>;

        fn par_iter(&'a self) -> SliceParIter<'a, T> {
            SliceParIter { items: self }
        }
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceParIter<'a, T>;

        fn par_iter(&'a self) -> SliceParIter<'a, T> {
            SliceParIter { items: self }
        }
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim join arm panicked"))
    })
}

/// The customary glob-import module, mirror of `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_moves_values() {
        let items: Vec<String> = (0..64).map(|i| i.to_string()).collect();
        let out: Vec<usize> = items.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 64);
        assert_eq!(out[9], 1);
        assert_eq!(out[10], 2);
    }

    #[test]
    fn range_par_iter_works() {
        let out: Vec<usize> = (0usize..100).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn uneven_work_still_ordered() {
        let items: Vec<u64> = (0..200).collect();
        let out: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                x
            })
            .collect();
        assert_eq!(out, items);
    }
}
