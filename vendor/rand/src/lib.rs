//! Vendored minimal subset of the [`rand`](https://docs.rs/rand) API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the tiny slice of `rand` it uses: a seedable deterministic
//! generator (`rngs::StdRng`) and a `random::<T>()` extension method.
//!
//! The generator is SplitMix64 feeding xoshiro256++ — high-quality,
//! allocation-free, and fully deterministic from `seed_from_u64`. Streams
//! differ from upstream `rand`'s `StdRng` (which is ChaCha-based); callers
//! in this workspace only rely on determinism per seed, not on matching
//! upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from an [`RngCore`] under the "standard" distribution:
/// uniform over the value range (for floats: uniform in `[0, 1)`).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods on any generator.
pub trait RngExt: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `[lo, hi)`; debiased via rejection sampling.
    fn random_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_bounded_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range_u64(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
