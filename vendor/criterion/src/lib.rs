//! Vendored minimal subset of the [`criterion`](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of criterion its bench targets use:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `bench_with_input` / `throughput`,
//! `BenchmarkId`, and `Throughput`.
//!
//! Differences from upstream, by design:
//!
//! * No statistical regression analysis, plots, or baselines — each
//!   benchmark reports min / mean / median of its sample of wall-clock
//!   iteration times.
//! * A **quick mode** (`--quick` on the command line, the
//!   `CRITERION_QUICK` environment variable, or [`Criterion::quick`])
//!   that shrinks warm-up and sampling so a full suite runs in seconds —
//!   used by the repo's `bench` binary to record perf trajectories.
//! * Results are collected on the [`Criterion`] value and can be drained
//!   with [`Criterion::take_results`] for machine-readable output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (reported, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from just a parameter (the group name provides context).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One measured benchmark, as recorded on the [`Criterion`] value.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/bench` or `bench`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum observed nanoseconds per iteration.
    pub min_ns: f64,
    /// Total timed iterations contributing to the stats.
    pub iterations: u64,
    /// Optional throughput annotation from the group.
    pub throughput: Option<Throughput>,
}

/// Timing configuration.
#[derive(Debug, Clone, Copy)]
struct Profile {
    warmup: Duration,
    measure: Duration,
    min_samples: u32,
}

impl Profile {
    fn standard() -> Self {
        Profile {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1500),
            min_samples: 10,
        }
    }

    fn quick() -> Self {
        Profile {
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(120),
            min_samples: 3,
        }
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    profile: Profile,
    filter: Option<String>,
    results: Vec<BenchResult>,
    quiet: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        Criterion {
            profile: if quick {
                Profile::quick()
            } else {
                Profile::standard()
            },
            filter: None,
            results: Vec::new(),
            quiet: false,
        }
    }
}

impl Criterion {
    /// A driver in quick mode (short warm-up, short measurement window).
    pub fn quick() -> Self {
        Criterion {
            profile: Profile::quick(),
            ..Criterion::default()
        }
    }

    /// Suppress per-benchmark stdout lines (results still recorded).
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Apply command-line arguments (`--quick`, and a free-form substring
    /// filter). Unrecognized flags — including the `--bench` cargo
    /// passes — are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => self.profile = Profile::quick(),
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {
                    // Flags with a value (e.g. --save-baseline x): skip it.
                    if let Some(next) = args.peek() {
                        if !next.starts_with("--") {
                            args.next();
                        }
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run_one(id, None, |b| f(b));
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Drain the recorded results (oldest first).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Print a one-line summary of everything measured so far.
    pub fn final_summary(&self) {
        if !self.quiet {
            println!("\n{} benchmarks measured", self.results.len());
        }
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            profile: self.profile,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let Bencher { mut samples, .. } = bencher;
        if samples.is_empty() {
            return; // closure never called iter()
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        if !self.quiet {
            let mut line = format!(
                "{id:<50} time: [{} {} {}]",
                fmt_ns(min),
                fmt_ns(mean),
                fmt_ns(samples[samples.len() - 1]),
            );
            if let Some(Throughput::Bytes(bytes)) = throughput {
                let gib_per_s = bytes as f64 / mean; // bytes per ns == GB/s
                let _ = write!(line, " thrpt: {gib_per_s:.3} GB/s");
            }
            println!("{line}");
        }
        self.results.push(BenchResult {
            id,
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            iterations: samples.len() as u64,
            throughput,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, |b| f(b, input));
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, |b| f(b));
        self
    }

    /// Close the group (upstream reports here; the shim records eagerly).
    pub fn finish(self) {}
}

/// Handed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    profile: Profile,
    /// Wall-clock nanoseconds per iteration, one entry per timed sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Warm up, then repeatedly time `payload` until the measurement
    /// window closes (at least `min_samples` iterations).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut payload: F) {
        let warm_deadline = Instant::now() + self.profile.warmup;
        loop {
            black_box(payload());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let measure_start = Instant::now();
        let deadline = measure_start + self.profile.measure;
        loop {
            let t0 = Instant::now();
            black_box(payload());
            self.samples.push(t0.elapsed().as_nanos() as f64);
            if Instant::now() >= deadline && self.samples.len() >= self.profile.min_samples as usize
            {
                break;
            }
        }
    }
}

/// Bundle benchmark functions into a group runner, mirror of upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups, mirror of upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::quick().quiet();
        c.bench_function("trivial", |b| b.iter(|| 1 + 1));
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "trivial");
        assert!(results[0].iterations >= 3);
        assert!(results[0].mean_ns >= 0.0);
        assert!(results[0].min_ns <= results[0].mean_ns + 1e-9);
    }

    #[test]
    fn groups_prefix_ids_and_keep_throughput() {
        let mut c = Criterion::quick().quiet();
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Bytes(1024));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results[0].id, "grp/7");
        assert!(matches!(
            results[0].throughput,
            Some(Throughput::Bytes(1024))
        ));
    }

    #[test]
    fn median_is_ordered() {
        let mut c = Criterion::quick().quiet();
        c.bench_function("spin", |b| b.iter(|| (0..100).sum::<u64>()));
        let r = &c.take_results()[0];
        assert!(r.min_ns <= r.median_ns);
    }
}
