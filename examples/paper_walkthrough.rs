//! A guided walkthrough of the paper's Figure 2 example: a 6-layer
//! transformer trained across 2 clusters × 2 nodes × 4 GPUs with degrees
//! `d=2, t=2, p=4`, printing the exact `[TP]`, `[PP]`, `[DP]` group
//! matrices of Eqs. 1/3/4 and where each group's traffic flows.
//!
//! Run with:
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use holmes_repro::parallel::{GroupLayout, HolmesScheduler, ParallelDegrees, Scheduler};
use holmes_repro::topology::{LinkKind, NicType, Rank, TopologyBuilder};

fn main() {
    // Figure 2's machine environment: cluster 1 (nodes 1–2) on InfiniBand,
    // cluster 2 (nodes 3–4) on RoCE, Ethernet between the clusters, 4 GPUs
    // per node.
    let topo = TopologyBuilder::new()
        .cluster("cluster-1 (InfiniBand)", 2, NicType::InfiniBand)
        .cluster("cluster-2 (RoCE)", 2, NicType::RoCE)
        .gpus_per_node(4)
        .build()
        .expect("figure 2 topology");
    println!(
        "Figure 2 topology: {} clusters, {} nodes, {} GPUs\n",
        topo.cluster_count(),
        topo.node_count(),
        topo.device_count()
    );

    // Figure 2's parallelism: d=2, t=2, p=4 over N=16 devices.
    let degrees = ParallelDegrees::new(2, 4, 2, topo.device_count()).expect("valid degrees");
    let layout = GroupLayout::new(degrees);
    let assignment = HolmesScheduler.assign(&topo, &layout);

    // Print the three group matrices (1-based, as the paper writes them).
    let print_groups = |name: &str, groups: Vec<Vec<u32>>| {
        println!("[{name}] groups (paper 1-based ranks):");
        for (i, g) in groups.iter().enumerate() {
            let members: Vec<String> = g.iter().map(|r| format!("{}", r + 1)).collect();
            println!("  {name}[{}] = {{{}}}", i + 1, members.join(", "));
        }
        println!();
    };
    print_groups("TP", layout.tp_groups());
    print_groups("PP", layout.pp_groups());
    print_groups("DP", layout.dp_groups());

    // Which transport does each group family actually use?
    println!("Transports under the Holmes assignment:");
    let describe = |label: &str, group: &[u32]| {
        let devices: Vec<Rank> = group.iter().map(|&l| assignment.device_of(l)).collect();
        let kinds: Vec<String> = devices
            .windows(2)
            .map(|w| match topo.link_between(w[0], w[1]).unwrap().kind {
                LinkKind::NvLink => "NVLink".to_owned(),
                LinkKind::PciE => "PCI-E".to_owned(),
                LinkKind::Rdma(nic) => format!("RDMA/{nic}"),
                LinkKind::Tcp => "Ethernet".to_owned(),
            })
            .collect();
        println!("  {label}: {}", kinds.join(" → "));
    };
    describe("TP[1] (intra-node)", &layout.tp_group(0));
    describe("PP[1] (across clusters)", &layout.pp_group(0));
    describe("DP[1] (within a cluster)", &layout.dp_group(0));

    // The paper's claims, verified programmatically:
    let nic = holmes_repro::parallel::NicSelectionReport::analyze(&topo, &layout, &assignment);
    println!(
        "\nAutomatic NIC Selection: {}/{} DP groups RDMA-capable \
         (the paper's design goal: all of them)",
        nic.rdma_groups,
        nic.groups.len()
    );
    assert_eq!(nic.ethernet_groups, 0, "Figure 2's DP groups must be RDMA");
}
