//! Quickstart: train a GPT model across two clusters with incompatible
//! RDMA NICs and compare Holmes against a NIC-oblivious baseline.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use holmes_repro::topology::presets;
use holmes_repro::{run_framework, FrameworkKind};

fn main() {
    // The paper's "Hybird" environment: one InfiniBand cluster and one
    // RoCE cluster (2 nodes × 8 A100 each), connected only by Ethernet.
    let topo = presets::hybrid_two_cluster(2);
    println!(
        "Topology: {} clusters, {} nodes, {} GPUs",
        topo.cluster_count(),
        topo.node_count(),
        topo.device_count()
    );

    // Train parameter group 1 (a 3.6 B-parameter GPT-3-style model,
    // Table 2 of the paper) for one simulated iteration per framework.
    println!(
        "\n{:<20} {:>12} {:>16} {:>12}",
        "framework", "TFLOPS/GPU", "samples/sec", "iter (s)"
    );
    for kind in FrameworkKind::ALL {
        let result = run_framework(kind, &topo, 1).expect("simulation runs");
        println!(
            "{:<20} {:>12.1} {:>16.2} {:>12.2}",
            kind.name(),
            result.metrics.tflops_per_gpu,
            result.metrics.throughput_samples_per_sec,
            result.metrics.iteration_seconds,
        );
    }

    // Holmes's Automatic NIC Selection keeps every data-parallel group on
    // one RDMA technology:
    let holmes = run_framework(FrameworkKind::Holmes, &topo, 1).unwrap();
    println!(
        "\nHolmes NIC selection: {}/{} data-parallel groups on RDMA; stage layers = {:?}",
        holmes.nic.rdma_groups,
        holmes.nic.groups.len(),
        holmes.stage_layers,
    );
}
