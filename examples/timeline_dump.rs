//! Dump a simulated iteration's execution timeline as Chrome tracing JSON
//! (open in `chrome://tracing` or https://ui.perfetto.dev) and print a
//! per-stage utilization summary.
//!
//! Run with:
//! ```sh
//! cargo run --release --example timeline_dump
//! ```

use holmes_repro::topology::{presets, Rank};
use holmes_repro::{run_framework, FrameworkKind};

fn main() {
    let topo = presets::hybrid_two_cluster(2);
    let result = run_framework(FrameworkKind::Holmes, &topo, 1).expect("run");
    let tl = &result.report.timeline;

    println!(
        "Simulated iteration: {:.2} s, {} spans recorded\n",
        result.report.total_seconds,
        tl.spans.len()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>8}",
        "device", "busy (s)", "wait (s)", "util"
    );
    for device in [0u32, 8, 16, 24] {
        let busy = tl.device_busy_seconds(Rank(device));
        let wait = result.report.total_seconds - busy;
        println!(
            "rank {:<5} {:>10.2} {:>10.2} {:>7.0}%",
            device,
            busy,
            wait,
            100.0 * (1.0 - tl.device_wait_fraction(Rank(device), result.report.total_seconds))
        );
    }

    let path = std::env::temp_dir().join("holmes_trace.json");
    std::fs::write(&path, tl.to_chrome_trace()).expect("write trace");
    println!("\nChrome trace written to {}", path.display());
    println!("Open chrome://tracing and load it to see the 1F1B pipeline shape.");
}
