//! Dump one observed iteration as a single merged Chrome-tracing JSON
//! file (open in `chrome://tracing` or <https://ui.perfetto.dev>) plus a
//! line-oriented JSONL event log, and print a per-stage utilization
//! summary.
//!
//! The trace merges every layer of the stack into one file: engine
//! compute/communication spans (one row per device rank), netsim
//! flow/link activity and park/resume instants, and the parallel layer's
//! planning events on the synthetic planning clock. The bytes are a pure
//! function of the scenario, so the same command always produces the
//! identical file.
//!
//! Run with:
//! ```sh
//! cargo run --release --example timeline_dump -- --out trace.json
//! ```
//! Without `--out` the trace lands in the system temp directory.

use holmes_repro::obs::ObsSession;
use holmes_repro::topology::{presets, Rank};
use holmes_repro::{run_framework_observed, FrameworkKind};

fn main() {
    let mut out: Option<std::path::PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(std::path::PathBuf::from(
                    args.get(i).expect("--out requires a path"),
                ));
            }
            other => panic!("unknown argument {other:?} (expected --out PATH)"),
        }
        i += 1;
    }
    let out = out.unwrap_or_else(|| std::env::temp_dir().join("holmes_trace.json"));

    let topo = presets::hybrid_two_cluster(2);
    let mut session = ObsSession::new();
    let result =
        run_framework_observed(FrameworkKind::Holmes, &topo, 1, &mut session).expect("run");
    let tl = &result.report.timeline;

    println!(
        "Simulated iteration: {:.2} s, {} engine spans recorded\n",
        result.report.total_seconds,
        tl.spans.len()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>8}",
        "device", "busy (s)", "wait (s)", "util"
    );
    for device in [0u32, 8, 16, 24] {
        let busy = tl.device_busy_seconds(Rank(device));
        let wait = result.report.total_seconds - busy;
        println!(
            "rank {:<5} {:>10.2} {:>10.2} {:>7.0}%",
            device,
            busy,
            wait,
            100.0 * (1.0 - tl.device_wait_fraction(Rank(device), result.report.total_seconds))
        );
    }

    let layers: Vec<&str> = session
        .trace
        .layers_present()
        .iter()
        .map(|l| l.name())
        .collect();
    println!(
        "\nMerged trace: {} spans + {} instants across layers [{}]",
        session.trace.span_count(),
        session.trace.instant_count(),
        layers.join(", ")
    );

    std::fs::write(&out, session.trace.to_chrome_trace()).expect("write trace");
    let jsonl = out.with_extension("jsonl");
    std::fs::write(&jsonl, session.trace.to_jsonl()).expect("write jsonl");
    println!("Chrome trace written to {}", out.display());
    println!("JSONL event log written to {}", jsonl.display());
    println!("Open chrome://tracing or ui.perfetto.dev and load the trace.");
}
