//! Component ablation: measure what each Holmes mechanism contributes
//! (the paper's Table 5), plus an α sensitivity sweep for the
//! Self-Adapting Pipeline Partition (Eq. 2).
//!
//! Run with:
//! ```sh
//! cargo run --release --example ablation
//! ```

use holmes_repro::topology::presets;
use holmes_repro::{run_framework, run_holmes_with, FrameworkKind, HolmesConfig};

fn main() {
    // Table 5's setting: PG3 (7.5 B) on 8 nodes = 4 RoCE + 4 InfiniBand.
    let topo = presets::hybrid_split(4, 4);

    println!("Ablation on PG3, 8 nodes (4 RoCE + 4 IB):\n");
    println!(
        "{:<32} {:>12} {:>14}",
        "configuration", "TFLOPS/GPU", "samples/sec"
    );

    let rows: Vec<(&str, HolmesConfig)> = vec![
        ("Holmes (full)", HolmesConfig::full()),
        (
            "w/o Self-Adapting-Partition",
            HolmesConfig::without_self_adapting(),
        ),
        (
            "w/o Overlapped Optimizer",
            HolmesConfig::without_overlapped_optimizer(),
        ),
        ("w/o Above Two", HolmesConfig::without_both()),
    ];
    let full = run_holmes_with(&HolmesConfig::full(), &topo, 3).unwrap();
    for (name, cfg) in &rows {
        let r = run_holmes_with(cfg, &topo, 3).unwrap();
        let delta = r.metrics.tflops_per_gpu - full.metrics.tflops_per_gpu;
        println!(
            "{:<32} {:>8.1} ({:+.1}) {:>12.2}",
            name, r.metrics.tflops_per_gpu, delta, r.metrics.throughput_samples_per_sec
        );
    }
    let mlm = run_framework(FrameworkKind::MegatronLm, &topo, 3).unwrap();
    println!(
        "{:<32} {:>8.1} ({:+.1}) {:>12.2}",
        "Megatron-LM (baseline)",
        mlm.metrics.tflops_per_gpu,
        mlm.metrics.tflops_per_gpu - full.metrics.tflops_per_gpu,
        mlm.metrics.throughput_samples_per_sec
    );

    // α sensitivity: the paper fixes α = 1.05; sweep it.
    println!("\nEq. 2 α sweep (same setting):");
    println!("{:<8} {:>16} {:>12}", "alpha", "stage layers", "TFLOPS/GPU");
    for alpha in [1.0, 1.02, 1.05, 1.1, 1.15, 1.2, 1.3] {
        let cfg = HolmesConfig {
            alpha,
            ..HolmesConfig::full()
        };
        let r = run_holmes_with(&cfg, &topo, 3).unwrap();
        println!(
            "{:<8.2} {:>16} {:>12.1}",
            alpha,
            format!("{:?}", r.stage_layers),
            r.metrics.tflops_per_gpu
        );
    }
}
