//! Capacity planning for a long training run: auto-tune the parallelism,
//! then simulate a jittered multi-iteration run and project the wall-clock
//! cost of a full token budget — the arithmetic behind the paper's
//! motivation (OPT-175B: 33 days on 1024 GPUs).
//!
//! Run with:
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use holmes_repro::model::ParameterGroup;
use holmes_repro::topology::presets;
use holmes_repro::{
    autotune, simulate_training_run, AutotuneRequest, HolmesConfig, PlanRequest, ReliabilityModel,
    Scenario, TrainingRunConfig,
};

fn main() {
    // The fleet we actually have: 4 InfiniBand nodes + 4 RoCE nodes.
    let topo = presets::hybrid_split(4, 4);
    let pg = ParameterGroup::table2(3); // 7.5 B model
    println!(
        "Planning a {:.1} B-parameter run on {} GPUs (4 IB + 4 RoCE nodes)\n",
        pg.config.parameter_count() as f64 / 1e9,
        topo.device_count()
    );

    // 1. Auto-tune the parallelism degrees.
    let ranked = autotune(
        &topo,
        &AutotuneRequest::new(pg.job()),
        &HolmesConfig::full(),
    );
    println!("Top plans (estimate-pruned, finalists simulated):");
    println!(
        "{:>3} {:>3} {:>4} {:>14} {:>14} {:>8}",
        "t", "p", "d", "est iter (s)", "sim iter (s)", "memory"
    );
    for c in ranked.iter().take(5) {
        println!(
            "{:>3} {:>3} {:>4} {:>14.2} {:>14} {:>8}",
            c.tensor,
            c.pipeline,
            c.data,
            c.estimated_seconds,
            c.simulated
                .map(|m| format!("{:.2}", m.iteration_seconds))
                .unwrap_or_else(|| "—".into()),
            if c.fits_memory { "ok" } else { "OOM" },
        );
    }
    let best = &ranked[0];

    // 2. Simulate a jittered 100-iteration run with the winning plan.
    let scenario = Scenario {
        topo: topo.clone(),
        request: PlanRequest {
            tensor_parallel: best.tensor,
            pipeline_parallel: best.pipeline,
            job: pg.job(),
        },
    };
    let run = simulate_training_run(
        &scenario,
        &HolmesConfig::full(),
        &TrainingRunConfig {
            iterations: 100,
            ..TrainingRunConfig::default()
        },
    )
    .expect("run simulates");

    println!(
        "\n100-iteration run with t={} p={}:",
        best.tensor, best.pipeline
    );
    println!(
        "  iteration: mean {:.2} s, p50 {:.2} s, p95 {:.2} s",
        run.mean_seconds, run.p50_seconds, run.p95_seconds
    );
    println!(
        "  throughput: {:.1} samples/s = {:.0} tokens/s",
        run.samples_per_sec, run.tokens_per_sec
    );

    // 3. Project a full pre-training budget (300 B tokens, LLaMA-scale).
    let budget = 300e9;
    println!(
        "\nProjected wall-clock for {:.0e} tokens: {:.1} days on this fleet",
        budget,
        run.days_for_tokens(budget)
    );

    // 4. Account for failures and checkpointing (the paper defers fault
    // handling to future work; the reliability model covers the planning
    // side of it).
    let reliability = ReliabilityModel::default();
    let ckpt = reliability.plan(&topo, &pg.config);
    println!(
        "\nReliability: job MTBF {:.1} h, checkpoint {:.1} s every {:.0} s, goodput {:.1}%",
        ckpt.job_mtbf_seconds / 3600.0,
        ckpt.checkpoint_seconds,
        ckpt.interval_seconds,
        ckpt.goodput * 100.0
    );
    let effective = ckpt.effective_throughput(run.tokens_per_sec);
    println!(
        "Failure-adjusted projection: {:.1} days",
        budget / effective / 86_400.0
    );
}
