//! Plan exploration: exhaustively search parallelism degrees `(t, p)` for
//! a model on a fixed fleet, simulating each feasible plan and ranking by
//! throughput — the capacity-planning workflow a Holmes user runs before
//! committing a multi-week training job. Each `(t, p)` cell's placement
//! comes from the guided branch-and-bound planner, whose search trace
//! (nodes expanded vs pruned) is printed alongside the plan.
//!
//! Run with:
//! ```sh
//! cargo run --release --example plan_explorer
//! ```

use holmes_repro::engine::DpSyncStrategy;
use holmes_repro::model::{GptConfig, MemoryEstimate, ParameterGroup, TrainJob};
use holmes_repro::parallel::{GroupLayout, GuidedPlanner, ParallelDegrees};
use holmes_repro::topology::presets;
use holmes_repro::{placement_gradient_bytes, run_scenario, HolmesConfig, PlanRequest, Scenario};

fn main() {
    // Fleet: 8 nodes split across an InfiniBand and a RoCE cluster.
    let topo = presets::hybrid_split(4, 4);
    let n = topo.device_count();
    let gpus_per_node = topo.gpus_per_node();

    // Model: PG3's 7.5 B architecture, batch 1536.
    let pg = ParameterGroup::table2(3);
    let job: TrainJob = pg.job();
    let cfg: GptConfig = job.config;

    println!(
        "Searching (t, p) for a {:.1} B model on {} GPUs…\n",
        cfg.parameter_count() as f64 / 1e9,
        n
    );
    println!(
        "{:>3} {:>3} {:>4} {:>6} {:>12} {:>14} {:>10}  {}",
        "t", "p", "d", "m", "TFLOPS/GPU", "samples/sec", "fits?", "search (expanded/pruned)"
    );

    let mut best: Option<(f64, u32, u32)> = None;
    for t in [1u32, 2, 4, 8] {
        if t > gpus_per_node {
            continue;
        }
        for p in 1..=8u32 {
            if !n.is_multiple_of(t * p) {
                continue;
            }
            let d = n / (t * p);
            let Some(m) = job.microbatches_per_replica(d) else {
                continue;
            };
            if cfg.num_layers < p {
                continue;
            }
            // Memory feasibility: the largest stage must fit in 80 GiB.
            let stage_params = u64::from(cfg.num_layers.div_ceil(p))
                * holmes_repro::model::layer_params(&cfg)
                + holmes_repro::model::embedding_params(&cfg);
            let mem = MemoryEstimate::for_rank(
                &cfg,
                stage_params,
                t,
                job.micro_batch,
                p,
                cfg.num_layers.div_ceil(p),
                d,
            );
            let fits = mem.fits_in(80 * 1024 * 1024 * 1024);

            let scenario = Scenario {
                topo: topo.clone(),
                request: PlanRequest {
                    tensor_parallel: t,
                    pipeline_parallel: p,
                    job,
                },
            };
            let result = match run_scenario(
                &scenario,
                &HolmesConfig::full(),
                DpSyncStrategy::DistributedOptimizer,
            ) {
                Ok(r) => r,
                Err(e) => {
                    println!("{t:>3} {p:>3} {d:>4}      — infeasible: {e}");
                    continue;
                }
            };
            // The guided planner's search trace for this cell: how much
            // of the cluster-order space branch-and-bound actually
            // visited to certify the placement it handed `run_scenario`.
            let degrees = ParallelDegrees::infer_data(t, p, n).expect("degrees divide the fleet");
            let layout = GroupLayout::new(degrees);
            let (placement, stats) = GuidedPlanner.plan_with_stats(
                &topo,
                &layout,
                placement_gradient_bytes(&job, degrees),
            );
            println!(
                "{:>3} {:>3} {:>4} {:>6} {:>12.1} {:>14.2} {:>10}  {:>3} expanded / {:>3} pruned{}",
                t,
                p,
                d,
                m,
                result.metrics.tflops_per_gpu,
                result.metrics.throughput_samples_per_sec,
                if fits { "yes" } else { "NO (OOM)" },
                stats.expanded,
                stats.pruned_total(),
                if stats.heuristic_won {
                    String::new()
                } else {
                    format!(
                        ", improved on heuristic: order {:?}",
                        placement.cluster_order
                    )
                }
            );
            if fits {
                let score = result.metrics.throughput_samples_per_sec;
                if best.is_none_or(|(b, _, _)| score > b) {
                    best = Some((score, t, p));
                }
            }
        }
    }

    if let Some((score, t, p)) = best {
        println!("\nBest memory-feasible plan: t={t}, p={p} at {score:.2} samples/s");
    }
}
