//! Case 2 of the paper (§2.2): training across GPU clusters at different
//! locations, with **no** high-speed interconnect between them.
//!
//! Scenario: a lab owns two 2-node InfiniBand clusters built years apart,
//! plus an older RoCE cluster. None of them alone is big enough for the
//! 7.5 B model at the target batch size; Holmes joins them with
//! cross-cluster pipeline parallelism so only activation traffic crosses
//! the slow inter-site Ethernet.
//!
//! Run with:
//! ```sh
//! cargo run --release --example multi_cluster
//! ```

use holmes_repro::topology::{presets, NicType, TopologyBuilder};
use holmes_repro::{run_framework, run_holmes_with, FrameworkKind, HolmesConfig};

fn main() {
    // --- Two same-NIC clusters, Ethernet between sites -------------------
    let two_site_ib = presets::same_nic_two_clusters(NicType::InfiniBand, 2);
    let r = run_framework(FrameworkKind::Holmes, &two_site_ib, 3).unwrap();
    println!("Two InfiniBand sites joined by Ethernet (PG3, 7.5 B):");
    println!(
        "  Holmes: {:.0} TFLOPS/GPU, {:.2} samples/s (upper bound = single IB cluster, \
         lower bound = Ethernet everywhere)",
        r.metrics.tflops_per_gpu, r.metrics.throughput_samples_per_sec
    );

    // Reference bounds.
    let upper = run_framework(
        FrameworkKind::Holmes,
        &presets::homogeneous(NicType::InfiniBand, 4),
        3,
    )
    .unwrap();
    let lower = run_framework(
        FrameworkKind::Holmes,
        &presets::homogeneous(NicType::Ethernet, 4),
        3,
    )
    .unwrap();
    println!(
        "  bounds: IB {:.0} TFLOPS ≥ Holmes {:.0} ≥ Ethernet {:.0}",
        upper.metrics.tflops_per_gpu, r.metrics.tflops_per_gpu, lower.metrics.tflops_per_gpu
    );

    // --- Three clusters with three different stages (Table 4) ------------
    let three = presets::table4_2r_2ib_2ib();
    let r3 = run_framework(FrameworkKind::Holmes, &three, 5).unwrap();
    println!("\nThree clusters (2 RoCE + 2 IB + 2 IB nodes), PG5 with pipeline depth 3:");
    println!(
        "  Holmes: {:.0} TFLOPS/GPU, {:.2} samples/s, stage layers {:?}",
        r3.metrics.tflops_per_gpu, r3.metrics.throughput_samples_per_sec, r3.stage_layers
    );
    println!(
        "  NIC selection: {}/{} DP groups on RDMA",
        r3.nic.rdma_groups,
        r3.nic.groups.len()
    );

    // --- A custom, unbalanced fleet --------------------------------------
    // 3 IB nodes + 1 RoCE node: pipeline stages cannot align perfectly
    // with clusters; Holmes still recovers most RDMA groups.
    let fleet = TopologyBuilder::new()
        .cluster("big-ib", 3, NicType::InfiniBand)
        .cluster("old-roce", 1, NicType::RoCE)
        .build()
        .unwrap();
    let rf = run_holmes_with(&HolmesConfig::full(), &fleet, 1).unwrap();
    println!("\nUnbalanced fleet (3 IB nodes + 1 RoCE node), PG1:");
    println!(
        "  Holmes: {:.0} TFLOPS/GPU, RDMA DP groups {}/{}",
        rf.metrics.tflops_per_gpu,
        rf.nic.rdma_groups,
        rf.nic.groups.len()
    );
}
